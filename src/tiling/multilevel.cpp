#include "tiling/multilevel.h"

#include <algorithm>
#include <utility>

#include "codegen/scan.h"

namespace emm {

namespace {

/// Widens a constraint/access row over [iters, oldParams, 1] to
/// [iters, oldParams, addParams(0), 1].
IntVec widenRowParams(const IntVec& row, int dim, int oldNp, int addNp) {
  IntVec wide(dim + oldNp + addNp + 1, 0);
  for (int j = 0; j < dim + oldNp; ++j) wide[j] = row[j];
  wide.back() = row.back();
  return wide;
}

IntMat widenMatParams(const IntMat& m, int dim, int oldNp, int addNp) {
  IntMat out(m.rows(), dim + oldNp + addNp + 1);
  for (int r = 0; r < m.rows(); ++r) out.setRow(r, widenRowParams(m.row(r), dim, oldNp, addNp));
  return out;
}

BoundExpr boundOverParams(const std::vector<DivExpr>& parts, bool isLower, int loop,
                          const std::vector<std::string>& paramNames) {
  std::vector<DivExpr> stripped;
  for (const DivExpr& e : parts) stripped.push_back(dropLeadingCoeffs(e, loop));
  return toBoundExpr(stripped, isLower, {}, paramNames);
}

/// Order-insensitive equality of two bound-part sets. The tiler fuses every
/// statement into one rectangular loop nest with no per-statement guards, so
/// the statements' bounds must agree as *expressions*, not merely in count:
/// two single-part bounds N-1 and N-2 describe different domains, and fusing
/// them silently executes the smaller statement one iteration out of bounds.
bool sameBoundParts(std::vector<DivExpr> a, std::vector<DivExpr> b) {
  if (a.size() != b.size()) return false;
  auto key = [](const DivExpr& e) { return std::make_pair(e.den, e.coeffs); };
  auto less = [&](const DivExpr& x, const DivExpr& y) { return key(x) < key(y); };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].den != b[i].den || a[i].coeffs != b[i].coeffs) return false;
  return true;
}

}  // namespace

std::vector<DimBounds> rectangularLoopBounds(const ProgramBlock& block, int depth) {
  std::vector<DimBounds> out(depth);
  for (int l = 0; l < depth; ++l) {
    bool first = true;
    for (const Statement& st : block.statements) {
      Polyhedron proj = st.domain;
      proj.simplify();
      proj = proj.projectedOnto(l + 1);
      DimBounds b = proj.loopBounds(l);
      for (const DivExpr& e : b.lower)
        for (int j = 0; j < l; ++j)
          EMM_REQUIRE(e.coeffs[j] == 0, "tiler requires parameter-only loop bounds");
      for (const DivExpr& e : b.upper)
        for (int j = 0; j < l; ++j)
          EMM_REQUIRE(e.coeffs[j] == 0, "tiler requires parameter-only loop bounds");
      if (first) {
        out[l] = b;
        first = false;
      } else {
        EMM_REQUIRE(sameBoundParts(b.lower, out[l].lower) && sameBoundParts(b.upper, out[l].upper),
                    "tiler requires identical loop bounds across statements");
      }
    }
  }
  return out;
}

namespace {

/// Shared implementation of analyzeTile / analyzeTileSymbolic. In symbolic
/// mode the sub-tile box uses one fresh tile-size parameter per loop (and
/// `tileValues` only feeds the sample binding); in concrete mode
/// `tileValues` are the actual sub-tile sizes baked into the box constants.
TileAnalysis analyzeTileImpl(const ProgramBlock& block, const std::vector<i64>& tileValues,
                             const SmemOptions& smemBase, bool hoist, bool useScratchpad,
                             bool symbolic) {
  block.validate();
  int depth = commonLoopDepth(block);
  for (const Statement& st : block.statements)
    EMM_REQUIRE(st.dim() == depth, "tiler requires all statements at common depth");
  EMM_REQUIRE(static_cast<int>(tileValues.size()) == depth, "subTile arity mismatch");
  for (i64 t : tileValues) EMM_REQUIRE(t >= 1, "tile sizes must be >= 1");

  TileAnalysis ta;
  ta.depth = depth;
  if (!symbolic) ta.subTile = tileValues;
  ta.loopBounds = rectangularLoopBounds(block, depth);

  // ---- Extended block: tile origins (and, in symbolic mode, tile sizes)
  // become parameters. ----
  ta.tileBlock = std::make_unique<ProgramBlock>(block);
  ProgramBlock& ext = *ta.tileBlock;
  ext.name = block.name + "_tile";
  int oldNp = block.nparam();
  for (int l = 0; l < depth; ++l) {
    ta.originParams.push_back("o" + std::to_string(l));
    ext.paramNames.push_back(ta.originParams.back());
  }
  if (symbolic) {
    for (int l = 0; l < depth; ++l) {
      std::string name = "Tsz" + std::to_string(l);
      EMM_REQUIRE(std::find(block.paramNames.begin(), block.paramNames.end(), name) ==
                      block.paramNames.end(),
                  "block parameter collides with symbolic tile name " + name);
      ta.tileParams.push_back(name);
      ext.paramNames.push_back(name);
    }
  }
  const int addNp = symbolic ? 2 * depth : depth;
  for (Statement& st : ext.statements) {
    Polyhedron dom(st.dim(), oldNp + addNp);
    IntMat eqs = widenMatParams(st.domain.equalities(), st.dim(), oldNp, addNp);
    IntMat ineqs = widenMatParams(st.domain.inequalities(), st.dim(), oldNp, addNp);
    for (int r = 0; r < eqs.rows(); ++r) dom.addEquality(eqs.row(r));
    for (int r = 0; r < ineqs.rows(); ++r) dom.addInequality(ineqs.row(r));
    for (int l = 0; l < depth; ++l) {
      IntVec lo(dom.cols(), 0), hi(dom.cols(), 0);
      lo[l] = 1;
      lo[st.dim() + oldNp + l] = -1;  // i_l - o_l >= 0
      dom.addInequality(lo);
      hi[l] = -1;
      hi[st.dim() + oldNp + l] = 1;
      if (symbolic) {
        hi[st.dim() + oldNp + depth + l] = 1;  // o_l + T_l - 1 - i_l >= 0
        hi.back() = -1;
      } else {
        hi.back() = tileValues[l] - 1;  // o_l + t_l - 1 - i_l >= 0
      }
      dom.addInequality(hi);
    }
    dom.simplify();
    st.domain = std::move(dom);
    for (Access& acc : st.accesses) acc.fn = widenMatParams(acc.fn, st.dim(), oldNp, addNp);
    st.schedule = widenMatParams(st.schedule, st.dim(), oldNp, addNp);
  }

  // ---- Scratchpad plan over the sub-tile. ----
  SmemOptions opts = smemBase;
  opts.blockLocalParams = ta.originParams;
  {
    // Context: loop lb <= o_l <= loop ub (and T_l >= 1 in symbolic mode).
    Polyhedron ctx(0, oldNp + addNp);
    for (int l = 0; l < depth; ++l) {
      for (const DivExpr& e : ta.loopBounds[l].lower) {
        DivExpr s = dropLeadingCoeffs(e, l);
        IntVec row(ctx.cols(), 0);
        row[oldNp + l] = s.den;  // den*o_l - expr >= 0
        for (int j = 0; j < oldNp; ++j) row[j] = narrow(-static_cast<i128>(s.coeffs[j]));
        row.back() = narrow(-static_cast<i128>(s.coeffs.back()));
        ctx.addInequality(row);
      }
      for (const DivExpr& e : ta.loopBounds[l].upper) {
        DivExpr s = dropLeadingCoeffs(e, l);
        IntVec row(ctx.cols(), 0);
        row[oldNp + l] = -s.den;  // expr - den*o_l >= 0
        for (int j = 0; j < oldNp; ++j) row[j] = s.coeffs[j];
        row.back() = s.coeffs.back();
        ctx.addInequality(row);
      }
      if (symbolic) {
        IntVec row(ctx.cols(), 0);
        row[oldNp + depth + l] = 1;  // T_l - 1 >= 0
        row.back() = -1;
        ctx.addInequality(row);
      }
    }
    opts.paramContext = ctx;
  }
  if (!opts.sampleParams.empty()) {
    EMM_REQUIRE(static_cast<int>(opts.sampleParams.size()) == oldNp,
                "sampleParams must bind the original parameters");
    // Sample tile origins at the loop lower bounds (which are functions of
    // the original parameters only).
    IntVec base(opts.sampleParams.begin(), opts.sampleParams.begin() + oldNp);
    for (int l = 0; l < depth; ++l)
      opts.sampleParams.push_back(evalStrippedLower(ta.loopBounds[l], l, base));
    // Symbolic tile parameters sample at the probe sizes the caller gave.
    if (symbolic)
      opts.sampleParams.insert(opts.sampleParams.end(), tileValues.begin(), tileValues.end());
  }

  if (useScratchpad) ta.plan = analyzeBlock(ext, opts);
  ta.plan.block = &ext;

  // ---- Hoist levels (Section 4.2). ----
  ta.hoistLevel.assign(ta.plan.partitions.size(), depth);
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    if (!ta.plan.partitions[p].hasBuffer) continue;
    if (!hoist) continue;  // ablation: keep copies innermost
    const PartitionPlan& part = ta.plan.partitions[p];
    std::vector<bool> uses(depth, false);
    // A constraint that has no set-variable coefficient is a pure parameter
    // residue of the projection (e.g. o2 + 1 >= 0 combined out of the tile
    // box); it does not make the data space depend on that origin.
    auto rowUsesData = [](const IntVec& row, int dim) {
      for (int j = 0; j < dim; ++j)
        if (row[j] != 0) return true;
      return false;
    };
    for (int l = 0; l < depth; ++l) {
      const std::string& oname = ta.originParams[l];
      for (const AffExpr& off : part.offset)
        if (off.mentions(oname)) uses[l] = true;
      for (const RefSummary& r : part.refs) {
        int dim = r.dataSpace.dim();
        int col = dim + oldNp + l;
        for (int rr = 0; rr < r.dataSpace.equalities().rows(); ++rr) {
          IntVec row = r.dataSpace.equalities().row(rr);
          if (row[col] != 0 && rowUsesData(row, dim)) uses[l] = true;
        }
        for (int rr = 0; rr < r.dataSpace.inequalities().rows(); ++rr) {
          IntVec row = r.dataSpace.inequalities().row(rr);
          if (row[col] != 0 && rowUsesData(row, dim)) uses[l] = true;
        }
      }
    }
    int levelNeeded = 0;
    for (int l = 0; l < depth; ++l)
      if (uses[l]) levelNeeded = l + 1;
    ta.hoistLevel[p] = levelNeeded;
  }
  return ta;
}

}  // namespace

TileAnalysis analyzeTile(const ProgramBlock& block, const ParallelismPlan& plan,
                         const std::vector<i64>& subTile, const SmemOptions& smemBase,
                         bool hoist, bool useScratchpad) {
  (void)plan;
  return analyzeTileImpl(block, subTile, smemBase, hoist, useScratchpad, /*symbolic=*/false);
}

TileAnalysis analyzeTileSymbolic(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& tileSample, const SmemOptions& smemBase,
                                 bool hoist) {
  (void)plan;
  return analyzeTileImpl(block, tileSample, smemBase, hoist, /*useScratchpad=*/true,
                         /*symbolic=*/true);
}

i64 TiledKernel::numBlockTiles(const IntVec& paramValues) const {
  std::vector<std::pair<std::string, i64>> env;
  const ProgramBlock& b = *analysis.tileBlock;
  for (size_t j = 0; j < paramValues.size(); ++j) env.emplace_back(b.paramNames[j], paramValues[j]);
  i64 tiles = 1;
  for (size_t s = 0; s < spaceLoopRange.size(); ++s) {
    i64 lo = spaceLoopRange[s].first.eval(env);
    i64 hi = spaceLoopRange[s].second.eval(env);
    i64 range = std::max<i64>(0, hi - lo + 1);
    tiles = mulChecked(tiles, ceilDiv(range, blockTileSizes[s]));
  }
  return tiles;
}

i64 TiledKernel::footprintPerBlock(const IntVec& paramValues) const {
  if (analysis.plan.block == nullptr) return 0;
  IntVec extended = paramValues;
  extended.resize(analysis.tileBlock->paramNames.size(), 0);
  i64 total = 0;
  for (size_t p = 0; p < analysis.plan.partitions.size(); ++p)
    total = addChecked(total, analysis.plan.bufferFootprint(static_cast<int>(p), extended));
  return total;
}

TiledKernel buildTiledKernel(const ProgramBlock& block, const ParallelismPlan& plan,
                             const TileConfig& config, const SmemOptions& smemBase) {
  EMM_REQUIRE(config.blockTile.size() == plan.spaceLoops.size(), "blockTile arity mismatch");
  EMM_REQUIRE(config.threadTile.size() == plan.spaceLoops.size(), "threadTile arity mismatch");
  for (i64 t : config.blockTile) EMM_REQUIRE(t >= 1, "tile sizes must be >= 1");
  for (i64 t : config.threadTile) EMM_REQUIRE(t >= 1, "tile sizes must be >= 1");
  // Sub-tiles must nest exactly inside block tiles on space loops; otherwise
  // a boundary sub-tile would straddle two outer-level units and statement
  // instances would execute in both (catastrophic for accumulations).
  for (size_t s = 0; s < plan.spaceLoops.size(); ++s)
    EMM_REQUIRE(config.blockTile[s] % config.subTile[plan.spaceLoops[s]] == 0,
                "blockTile must be a multiple of subTile on space loops");

  TiledKernel result;
  result.analysis = analyzeTile(block, plan, config.subTile, smemBase, config.hoistCopies,
                                config.useScratchpad);
  TileAnalysis& ta = result.analysis;
  ProgramBlock& ext = *ta.tileBlock;
  int depth = ta.depth;
  int oldNp = block.nparam();
  result.spaceLoops = plan.spaceLoops;
  result.blockTileSizes = config.blockTile;

  CodeUnit unit;
  unit.name = block.name + "_tiled";
  unit.source = &ext;

  // ---- Buffer table & rewritten statements. ----
  for (const PartitionPlan& part : ta.plan.partitions) {
    if (!part.hasBuffer) continue;
    LocalBuffer buf;
    buf.name = part.bufferName;
    buf.ndim = ext.arrays[part.arrayId].ndim();
    buf.offset = part.offset;
    buf.sizeExpr = part.sizeExpr;
    unit.localBuffers.push_back(std::move(buf));
  }
  if (config.useScratchpad) {
    int numGlobals = static_cast<int>(ext.arrays.size());
    for (size_t s = 0; s < ext.statements.size(); ++s) {
      Statement st = ext.statements[s];
      for (size_t a = 0; a < st.accesses.size(); ++a) {
        int pi = ta.plan.partitionOf[s][a];
        if (pi < 0) continue;
        const PartitionPlan& part = ta.plan.partitions[pi];
        Access& acc = st.accesses[a];
        for (int r = 0; r < acc.fn.rows(); ++r) {
          const AffExpr& off = part.offset[r];
          for (const auto& [name, coeff] : off.terms) {
            auto it = std::find(ext.paramNames.begin(), ext.paramNames.end(), name);
            EMM_CHECK(it != ext.paramNames.end(), "offset mentions unknown parameter");
            int pj = static_cast<int>(it - ext.paramNames.begin());
            acc.fn.at(r, st.dim() + pj) = subChecked(acc.fn.at(r, st.dim() + pj), coeff);
          }
          acc.fn.at(r, acc.fn.cols() - 1) =
              subChecked(acc.fn.at(r, acc.fn.cols() - 1), off.cnst);
        }
        int bufferId = 0;
        for (int q = 0; q < pi; ++q)
          if (ta.plan.partitions[q].hasBuffer) ++bufferId;
        acc.arrayId = numGlobals + bufferId;
      }
      unit.statements.push_back(std::move(st));
    }
  } else {
    unit.statements = ext.statements;
  }

  // ---- AST construction. ----
  const std::vector<std::string>& pn = block.paramNames;
  auto loopLb = [&](int l) { return boundOverParams(ta.loopBounds[l].lower, true, l, pn); };
  auto loopUb = [&](int l) { return boundOverParams(ta.loopBounds[l].upper, false, l, pn); };
  (void)oldNp;

  auto isSpace = [&](int l) {
    return std::find(plan.spaceLoops.begin(), plan.spaceLoops.end(), l) != plan.spaceLoops.end();
  };
  auto spaceIndex = [&](int l) {
    auto it = std::find(plan.spaceLoops.begin(), plan.spaceLoops.end(), l);
    return static_cast<int>(it - plan.spaceLoops.begin());
  };

  unit.root = AstNode::block();
  AstNode* cursor = unit.root.get();

  // Block-tile loops (outer level; FORALL across thread blocks).
  for (int l : plan.spaceLoops) {
    int s = spaceIndex(l);
    AstPtr loop = AstNode::forLoop("b" + std::to_string(l), loopLb(l), loopUb(l),
                                   config.blockTile[s], LoopKind::BlockParallel);
    cursor = cursor->addChild(std::move(loop));
  }

  // Copy fragments, placed at their hoist levels.
  struct CopyFragment {
    int partition;
    bool moveIn;
    AstPtr code;
    int level;
  };
  std::vector<CopyFragment> fragments;
  for (size_t p = 0; p < ta.plan.partitions.size(); ++p) {
    if (!ta.plan.partitions[p].hasBuffer) continue;
    for (bool moveIn : {true, false}) {
      CopyFragment f;
      f.partition = static_cast<int>(p);
      f.moveIn = moveIn;
      f.code = buildCopyCode(ta.plan, static_cast<int>(p), moveIn);
      if (f.code->children.empty()) continue;  // e.g. read-only buffers move nothing out
      f.level = ta.hoistLevel[p];
      fragments.push_back(std::move(f));
    }
  }

  // Sub-tile loops: iterators ARE the origin parameters, so the plan's copy
  // code and rewritten access functions bind through the environment.
  std::vector<AstNode*> levelNodes;
  levelNodes.push_back(cursor);
  for (int l = 0; l < depth; ++l) {
    for (CopyFragment& f : fragments)
      if (f.moveIn && f.level == l) {
        levelNodes.back()->addChild(
            AstNode::comment("move-in " + ta.plan.partitions[f.partition].bufferName));
        levelNodes.back()->addChild(std::move(f.code));
        levelNodes.back()->addChild(AstNode::sync());
      }
    BoundExpr lb, ub;
    if (isSpace(l)) {
      std::string bIter = "b" + std::to_string(l);
      lb = BoundExpr::single(AffExpr::var(bIter), true);
      ub = loopUb(l);
      ub.parts.push_back(AffExpr::var(bIter).plus(config.blockTile[spaceIndex(l)] - 1));
    } else {
      lb = loopLb(l);
      ub = loopUb(l);
    }
    AstPtr loop = AstNode::forLoop(ta.originParams[l], lb, ub, config.subTile[l]);
    levelNodes.push_back(levelNodes.back()->addChild(std::move(loop)));
  }
  for (CopyFragment& f : fragments)
    if (f.moveIn && f.level == depth) {
      levelNodes.back()->addChild(
          AstNode::comment("move-in " + ta.plan.partitions[f.partition].bufferName));
      levelNodes.back()->addChild(std::move(f.code));
      levelNodes.back()->addChild(AstNode::sync());
    }

  // Thread-tile loops over space loops, then point loops, then calls.
  AstNode* inner = levelNodes.back();
  for (int l : plan.spaceLoops) {
    int s = spaceIndex(l);
    BoundExpr lb = BoundExpr::single(AffExpr::var(ta.originParams[l]), true);
    BoundExpr ub = loopUb(l);
    ub.parts.push_back(AffExpr::var(ta.originParams[l]).plus(config.subTile[l] - 1));
    inner = inner->addChild(AstNode::forLoop("t" + std::to_string(l), lb, ub,
                                             config.threadTile[s], LoopKind::ThreadParallel));
  }
  for (int l = 0; l < depth; ++l) {
    BoundExpr lb, ub;
    if (isSpace(l)) {
      std::string tIter = "t" + std::to_string(l);
      lb = BoundExpr::single(AffExpr::var(tIter), true);
      ub = loopUb(l);
      ub.parts.push_back(AffExpr::var(tIter).plus(config.threadTile[spaceIndex(l)] - 1));
      ub.parts.push_back(AffExpr::var(ta.originParams[l]).plus(config.subTile[l] - 1));
    } else {
      lb = BoundExpr::single(AffExpr::var(ta.originParams[l]), true);
      ub = loopUb(l);
      ub.parts.push_back(AffExpr::var(ta.originParams[l]).plus(config.subTile[l] - 1));
    }
    inner = inner->addChild(AstNode::forLoop("p" + std::to_string(l), lb, ub));
  }
  for (size_t s = 0; s < unit.statements.size(); ++s) {
    std::vector<AffExpr> args;
    for (int l = 0; l < depth; ++l) args.push_back(AffExpr::var("p" + std::to_string(l)));
    inner->addChild(AstNode::call(static_cast<int>(s), std::move(args)));
  }

  // Move-out fragments at their levels (after the deeper loops).
  for (CopyFragment& f : fragments)
    if (!f.moveIn) {
      AstNode* host = levelNodes[f.level];
      host->addChild(AstNode::sync());
      host->addChild(
          AstNode::comment("move-out " + ta.plan.partitions[f.partition].bufferName));
      host->addChild(std::move(f.code));
    }

  for (int l : plan.spaceLoops) result.spaceLoopRange.emplace_back(loopLb(l), loopUb(l));
  result.unit = std::move(unit);
  return result;
}

}  // namespace emm
