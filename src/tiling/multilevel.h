// Multi-level tiling for two-level parallel architectures (paper Section 4).
//
// Produces the structure of the paper's Figure 3 from the structure of
// Figure 2:
//   FORALL block-tile loops  (space loops distributed over outer-level units)
//     FOR   sub-tile loops   (extra sequential level that bounds scratchpad
//                             footprint; all tiled loops)
//       <move-in code>                         -- placed per Section 4.2
//       FORALL thread-tile loops (space loops over inner-level units)
//         FOR point loops
//           statement instances (rewritten to hit scratchpad buffers)
//       <move-out code>
//
// The scratchpad framework of Section 3 is applied to the sub-tile viewed
// as a program block whose parameters are the original parameters plus the
// tile-origin iterators; buffer sizes are then tile-size expressions and the
// move-in/move-out code is parameterized by the origins, exactly as in the
// paper. Hoisting (Section 4.2) moves copy code above sub-tile loops that
// are redundant for a buffer (no data space depends on their origin).
//
// Scope: statements must share all `commonLoopDepth` loops and loop bounds
// must be parameter-only (rectangular bands) — the shape of Figure 2. The
// Jacobi pipeline uses the concurrent-start mapping in src/kernels instead
// (the paper likewise defers to [27] for that kernel).
#pragma once

#include <memory>

#include "smem/data_manage.h"
#include "transform/transform.h"

namespace emm {

/// Tile-level analysis shared by code generation and the tile-size search:
/// the sub-tile program block (origins as parameters), its scratchpad plan,
/// and the hoisted placement level of every buffer's copy code.
struct TileAnalysis {
  std::unique_ptr<ProgramBlock> tileBlock;
  DataPlan plan;                          ///< empty partitions when scratchpad off
  std::vector<std::string> originParams;  ///< one per common loop
  /// Symbolic tile-size parameter names (one per common loop) when the
  /// analysis ran in parametric mode (analyzeTileSymbolic); empty otherwise.
  std::vector<std::string> tileParams;
  std::vector<DimBounds> loopBounds;      ///< parameter-only bounds per loop
  std::vector<i64> subTile;               ///< empty in parametric mode
  int depth = 0;
  /// Per partition index: sub-tile nesting level (0..depth) the copy code is
  /// placed at; `depth` = innermost. Only meaningful for buffered partitions.
  std::vector<int> hoistLevel;
};

/// Runs the Section-3 analysis on the sub-tile block induced by `subTile`
/// sizes and computes copy-code placement levels (Section 4.2; pass
/// hoist=false for the ablation that pins copies innermost).
TileAnalysis analyzeTile(const ProgramBlock& block, const ParallelismPlan& plan,
                         const std::vector<i64>& subTile, const SmemOptions& smemBase,
                         bool hoist = true, bool useScratchpad = true);

/// Parametric variant: the sub-tile box is written with one fresh *symbolic*
/// parameter per loop (TileAnalysis::tileParams, constrained >= 1 in the
/// analysis context) instead of concrete sizes, so the whole Section-3
/// analysis — data-space images, overlap partitions, buffer geometry, hoist
/// levels — is derived once for all tile sizes. `tileSample` (one value per
/// loop) extends the Algorithm-1/geometry sample binding the way concrete
/// sizes would. The ParametricTilePlan layer compiles the result into
/// closed-form evaluators.
TileAnalysis analyzeTileSymbolic(const ProgramBlock& block, const ParallelismPlan& plan,
                                 const std::vector<i64>& tileSample, const SmemOptions& smemBase,
                                 bool hoist = true);

/// Per-loop parameter-only bounds shared by all statements (the rectangular
/// band shape the tiler requires); identical to TileAnalysis::loopBounds but
/// computed without running the scratchpad analysis. Tile-size independent,
/// so the tile-size search computes them once and shares them across all
/// candidate evaluations. Throws ApiError on non-rectangular blocks.
std::vector<DimBounds> rectangularLoopBounds(const ProgramBlock& block, int depth);

/// Concrete tile sizes. Ordering follows loop index order of the block.
struct TileConfig {
  /// Per common loop: sub-tile (memory-level) size; must be >= 1.
  std::vector<i64> subTile;
  /// Per space loop (in plan.spaceLoops order): block-tile size.
  std::vector<i64> blockTile;
  /// Per space loop: thread-tile size.
  std::vector<i64> threadTile;
  /// Section 4.2 hoisting of copy code out of redundant loops.
  bool hoistCopies = true;
  /// When false, no scratchpad framework is applied: all accesses stay in
  /// global memory (the paper's "GPU w/o scratchpad" baseline).
  bool useScratchpad = true;
};

/// A fully mapped kernel: executable CodeUnit plus the analysis artifacts.
struct TiledKernel {
  TileAnalysis analysis;  ///< owns the tile block; unit.source points at it
  CodeUnit unit;
  std::vector<int> spaceLoops;
  std::vector<i64> blockTileSizes;  ///< per space loop
  std::vector<std::pair<BoundExpr, BoundExpr>> spaceLoopRange;  ///< lb/ub per space loop

  /// Number of outer-level tiles (= thread blocks launched) at a binding.
  i64 numBlockTiles(const IntVec& paramValues) const;
  /// Scratchpad elements needed per block instance.
  i64 footprintPerBlock(const IntVec& paramValues) const;
};

/// Builds the multi-level tiled kernel (Figure 3).
TiledKernel buildTiledKernel(const ProgramBlock& block, const ParallelismPlan& plan,
                             const TileConfig& config, const SmemOptions& smemBase);

}  // namespace emm
