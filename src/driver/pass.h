// Pass interface and registry for the compiler pipeline.
//
// Each stage of the paper's flow (dependence analysis, transformation,
// tile-size search, multi-level tiling, scratchpad planning, code
// generation) is wrapped as a named Pass over a shared CompileState. The
// PassRegistry holds the standard pipeline order; emm::Compiler instantiates
// it and lets callers skip or replace individual passes, which is how tests
// pin stages and how ablations switch variants without re-wiring the flow.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/diagnostic.h"
#include "driver/family_plan.h"
#include "driver/options.h"
#include "smem/buffer_layout.h"
#include "tiling/multilevel.h"

namespace emm {

/// Everything the pipeline produces. The working CompileState and the final
/// CompileResult both embed this struct; Compiler::compile() moves it
/// wholesale, so a field added here flows to results automatically — but
/// clone() below copies field by field (the unique_ptr-held blocks make the
/// struct non-copyable), so ADDING A FIELD REQUIRES EXTENDING clone() in
/// pass.cpp AND the serializers (plus their schema manifest) in
/// support/serialize.cpp, or warm plan-cache hits / disk replays will
/// silently default-initialize it.
/// Program blocks live behind unique_ptr so CodeUnit/DataPlan back-pointers
/// into them survive those moves.
struct PipelineProducts {
  /// The block as given to the Compiler.
  std::unique_ptr<ProgramBlock> input;
  /// After the transform pass: possibly shifted/skewed. block() returns
  /// this when present, else the input.
  std::unique_ptr<ProgramBlock> transformed;

  std::vector<Dependence> deps;
  bool haveDeps = false;

  ParallelismPlan plan;
  bool havePlan = false;
  std::vector<std::pair<int, std::pair<int, i64>>> appliedSkews;

  /// Tile-size search outcome; when options.subTile was given explicitly the
  /// search pass still fills eval/terms by evaluating it (for diagnostics).
  TileSearchResult search;

  /// Buffer-geometry hints instantiated from the parametric tile plan at the
  /// chosen tile sizes; the tiling pass threads them into the Section-3
  /// planner so buffer bounds are adopted instead of re-derived. Empty when
  /// the search ran on the concrete path.
  std::vector<GeometryHint> geometryHints;

  /// Full tiled kernel (Figure-3 structure); absent on the scratchpad-only
  /// and pipeline-parallel fallback paths.
  std::optional<TiledKernel> kernel;
  /// Block-level scratchpad unit (Figure-1 flow); alternative to `kernel`.
  std::optional<CodeUnit> scratchpadUnit;
  /// Section-3 analysis of the (untiled) block, filled on paths where
  /// `kernel` is absent; the tiled path exposes kernel->analysis.plan.
  std::optional<DataPlan> blockPlan;

  /// Packed banked layout of the unit's local buffers (smem pass output):
  /// conflict pads, symbolic offsets and the padded-footprint formula.
  /// Absent when the path produced no unit or packing is disabled. Rides
  /// through serialization so warm/family tiers serve packed layouts.
  std::optional<BufferLayout> bufferLayout;

  /// Size-generic verdict, bind slots and guard predicates of the emitted
  /// artifact (codegen pass output; see codegen/artifact_info.h). When
  /// sizeGeneric, the family tier serves new sizes by RuntimeBinder lookup
  /// instead of re-running the emitter.
  std::optional<ArtifactInfo> artifactInfo;

  /// Rendered target source (codegen pass output).
  std::string artifact;

  /// The block the pipeline has ended on so far.
  const ProgramBlock& block() const { return transformed ? *transformed : *input; }
  /// The executable unit produced, or nullptr.
  const CodeUnit* unit() const {
    if (kernel) return &kernel->unit;
    if (scratchpadUnit) return &*scratchpadUnit;
    return nullptr;
  }
  /// The scratchpad plan in effect, or nullptr.
  const DataPlan* dataPlan() const {
    if (kernel) return &kernel->analysis.plan;
    if (blockPlan) return &*blockPlan;
    return nullptr;
  }

  /// Deep copy with internal back-pointers (CodeUnit::source, DataPlan::block)
  /// rebound to the copied blocks. This is how the plan cache stores one
  /// snapshot per key and hands out independently owned results.
  PipelineProducts clone() const;
};

/// Mutable state threaded through the pipeline: the accumulated products
/// plus the option set and the diagnostics channel.
struct CompileState : PipelineProducts {
  CompileOptions options;

  /// Family-tier input, set by the driver on a family hit: the
  /// size-generic products of this kernel family (family_plan.h). Passes
  /// adopt what applies to their stage and mark familyUsed.
  std::shared_ptr<const FamilyPlan> familyIn;
  /// Allocated by the driver on a family miss; passes publish the
  /// family-invariant products they computed, and the driver stores the
  /// result in the family tier after a successful run.
  std::shared_ptr<FamilyPlan> familyOut;
  /// True when any pass served its stage from familyIn (drives
  /// CompileResult::familyHit and the family-tier counters).
  bool familyUsed = false;

  std::vector<Diagnostic> diagnostics;
  bool failed = false;  ///< an error diagnostic was recorded

  /// Named sub-stage timings a pass wants surfaced next to its own entry in
  /// CompileResult::timings (e.g. "tilesearch.plan" vs "tilesearch.eval").
  /// The driver drains this after every pass.
  std::vector<std::pair<std::string, double>> subTimings;

  const ProgramBlock& currentBlock() const { return block(); }

  void note(const std::string& stage, const std::string& message);
  void warn(const std::string& stage, const std::string& message);
  void error(const std::string& stage, const std::string& message);  ///< sets failed
};

/// One pipeline stage. Implementations read and extend CompileState; they
/// report through state.note/warn/error. Throwing ApiError from run() aborts
/// the pipeline with an error diagnostic attributed to this pass.
class Pass {
public:
  explicit Pass(std::string name) : name_(std::move(name)) {}
  virtual ~Pass() = default;
  const std::string& name() const { return name_; }
  virtual void run(CompileState& state) = 0;

private:
  std::string name_;
};

using PassPtr = std::unique_ptr<Pass>;

/// Ordered, named pass factories. The standard() registry holds the paper's
/// flow; custom registries can be assembled for experiments.
class PassRegistry {
public:
  using Factory = std::function<PassPtr()>;

  /// Appends a pass to the pipeline order. Throws ApiError on duplicates.
  void add(const std::string& name, Factory factory);
  bool contains(const std::string& name) const;
  /// Instantiates one pass. Throws ApiError for unknown names.
  PassPtr create(const std::string& name) const;
  const std::vector<std::string>& order() const { return order_; }

  /// The standard pipeline: deps, transform, tilesearch, tiling, smem,
  /// codegen.
  static const PassRegistry& standard();

private:
  std::vector<std::string> order_;
  std::vector<Factory> factories_;
};

}  // namespace emm
