#include "driver/diagnostic.h"

namespace emm {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  return std::string(severityName(severity)) + " [" + stage + "]: " + message;
}

bool hasErrors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::Error) return true;
  return false;
}

std::string renderDiagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.str();
    out += '\n';
  }
  return out;
}

}  // namespace emm
