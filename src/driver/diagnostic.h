// Structured diagnostics for the compiler driver.
//
// Passes report findings through Diagnostic records instead of ad-hoc
// printf/strings: each carries a severity, the stage that produced it, and a
// message. CompileResult accumulates them in pass execution order, so
// callers can render them uniformly (emmapc), assert on them (tests), or
// ship them to a service log.
#pragma once

#include <string>
#include <vector>

namespace emm {

enum class Severity { Note, Warning, Error };

const char* severityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::Note;
  std::string stage;    ///< pass name that produced the diagnostic
  std::string message;

  std::string str() const;
};

/// True when any diagnostic is an error.
bool hasErrors(const std::vector<Diagnostic>& diags);

/// Renders all diagnostics, one per line.
std::string renderDiagnostics(const std::vector<Diagnostic>& diags);

}  // namespace emm
