// RuntimeBinder: serve a warmed kernel family at a new problem size with
// NO pipeline run and NO re-emission.
//
// A cold compile whose artifact came out size-generic (problem sizes are
// runtime kernel arguments, buffer geometry folded in as guarded
// closed-form expressions — see codegen/artifact_info.h) publishes its full
// result as the family RECORD (FamilyPlan::record). Serving a further
// member of the family then reduces to:
//
//   1. identity check — the codegen-only options the family key
//      neutralizes (backend, kernel name, element type, bound count) must
//      match the record's,
//   2. feasibility — the family's parametric tile plan re-certifies the
//      record's tile choice at the requested size (footprint <= Mup),
//   3. guard validation — every FamilyGuard of the record's ArtifactInfo
//      must hold at the requested size; a violation (pad decision or
//      packed-arena verdict would differ) rejects with a clean diagnostic
//      and the caller falls back to the bind-and-emit pipeline,
//   4. argument fill — each BindSlot is evaluated at the requested size
//      into CompileResult::boundArgs; the artifact text is returned
//      verbatim (byte-identical to what a per-size compile would emit).
//
// The whole bind is a handful of expression evaluations — microseconds
// against the milliseconds of bind-and-emit — which is what turns the
// daemon's family hit path into a lookup (bench/svc_family_bind.cpp).
#pragma once

#include <optional>
#include <vector>

#include "driver/compiler.h"

namespace emm {

/// Publishes `result` as the size-generic record of `family` when its
/// artifact qualifies (ok + ArtifactInfo::sizeGeneric); no-op otherwise.
/// Called by the driver on a cold family compile before the plan is
/// inserted into the cache tiers.
void attachFamilyRecord(FamilyPlan& family, const CompileResult& result,
                        const CompileOptions& options);

/// Binds the family record to `request` (a member block carrying the
/// requested concrete sizes in its array table) at options.paramValues.
/// Returns the bound result — the record's products with the request's
/// array tables swapped in, boundArgs filled, and artifactBound/familyHit
/// set — or nullopt when the family has no record, the identity check
/// fails, the tile choice is infeasible at this size, or a guard rejects.
/// Every non-bind appends a note diagnostic to `diagnostics` (may be null)
/// explaining the fallback; guards never produce a wrong answer, only a
/// rejection.
std::optional<CompileResult> bindFamilyArtifact(const FamilyPlan& family,
                                                const ProgramBlock& request,
                                                const CompileOptions& options,
                                                std::vector<Diagnostic>* diagnostics);

}  // namespace emm
