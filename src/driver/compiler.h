// emm::Compiler — the unified driver for the paper's compilation flow.
//
// One stable entry point replaces the hand-wired stage calls that the tool,
// examples and benches used to duplicate:
//
//   CompileResult r = Compiler(buildMeBlock(ni, nj, w))
//                         .parameters({ni, nj, w})
//                         .memoryLimitBytes(16 * 1024)
//                         .backend("cuda")
//                         .compile();
//   if (!r.ok) { fputs(renderDiagnostics(r.diagnostics).c_str(), stderr); ... }
//   fputs(r.artifact.c_str(), stdout);
//
// The pipeline is the standard PassRegistry order (deps -> transform ->
// tilesearch -> tiling -> smem -> codegen); individual passes can be
// skipped or replaced for experiments and tests. Results are structured:
// the CodeUnit, the parallelism plan, the tile-search outcome, per-pass
// timings, and Diagnostic records instead of ad-hoc strings.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/backend.h"
#include "driver/pass.h"

namespace emm {

class PlanCache;
class ThreadPool;

/// Wall-clock record of one pipeline stage.
struct PassTiming {
  std::string pass;
  double millis = 0;
  bool ran = false;      ///< run() was invoked
  bool skipped = false;  ///< user-skipped via Compiler::skipPass
};

/// Everything a compilation produced: the pipeline products (block, plan,
/// search outcome, kernel/unit, artifact — see PipelineProducts) plus the
/// verdict, ordered diagnostics, and per-pass timings. Move-only: program
/// blocks live behind unique_ptr so internal back-pointers
/// (CodeUnit::source, DataPlan::block) stay valid when the result moves.
struct CompileResult : PipelineProducts {
  bool ok = false;  ///< pipeline completed without error diagnostics
  /// True when this result came from the PlanCache instead of a pipeline
  /// run. The products are a deep copy of the cached plan; `timings`
  /// describe the run that originally produced it.
  bool cacheHit = false;
  std::vector<Diagnostic> diagnostics;
  std::vector<PassTiming> timings;  ///< one entry per pipeline pass, in order

  /// First error message, or "" when ok.
  std::string firstError() const;
  /// Timing entry for a pass, or nullptr.
  const PassTiming* timing(const std::string& pass) const;

  /// Deep copy (results are otherwise move-only); used by the plan cache.
  CompileResult clone() const;
};

/// Builder-style façade over the pass pipeline. Reusable: compile() may be
/// called repeatedly (e.g. with different options between calls).
class Compiler {
public:
  Compiler() = default;
  explicit Compiler(ProgramBlock block) { source(std::move(block)); }

  // ---- configuration ----
  Compiler& source(ProgramBlock block);
  Compiler& options(CompileOptions o);
  /// Direct access to the full option set (for knobs without sugar).
  CompileOptions& opts() { return options_; }
  const CompileOptions& opts() const { return options_; }

  Compiler& parameters(IntVec values);
  Compiler& tileSizes(std::vector<i64> subTile);
  Compiler& blockTileSizes(std::vector<i64> blockTile);
  Compiler& threadTileSizes(std::vector<i64> threadTile);
  Compiler& tileCandidates(std::vector<std::vector<i64>> candidates);
  Compiler& memoryLimitBytes(i64 bytes);
  Compiler& innerProcs(i64 procs);
  Compiler& hoistCopies(bool on);
  Compiler& useScratchpad(bool on);
  Compiler& stageEverything(bool on);
  Compiler& partition(PartitionMode mode);
  Compiler& delta(double d);
  Compiler& scratchpadOnly(bool on = true);
  Compiler& exhaustiveSearch(bool on = true);
  Compiler& backend(std::string name);
  Compiler& kernelName(std::string name);

  // ---- service configuration ----
  /// Attaches a plan cache (nullptr detaches). compile() then returns
  /// cached results for (block fingerprint, options hash, skipped passes)
  /// it has seen succeed before, with CompileResult::cacheHit set.
  /// Pipelines with replaced passes bypass the cache. PlanCache::global()
  /// is the process-wide instance.
  Compiler& cache(PlanCache* cache);
  const PlanCache* planCache() const { return cache_; }
  /// Worker count for compileAsync/compileBatch (0 = hardware default).
  /// The pool is created lazily on the first async/batch call.
  Compiler& jobs(int n);

  // ---- pass control ----
  /// Skips a standard pass. Throws ApiError for names not in the registry.
  Compiler& skipPass(const std::string& name);
  /// Replaces a standard pass with a custom implementation (shared so the
  /// Compiler stays reusable). Throws ApiError for unknown names.
  Compiler& replacePass(const std::string& name, std::shared_ptr<Pass> pass);
  /// Effective pipeline order (skipped passes still listed; they are marked
  /// in CompileResult::timings instead).
  std::vector<std::string> passNames() const;

  // ---- execution ----
  /// Compiles the configured source block. Throws ApiError when no source
  /// was set; all pipeline failures are reported via CompileResult instead.
  CompileResult compile();
  /// One-shot convenience: sets the source, then compiles.
  CompileResult compile(ProgramBlock block);

  /// Compiles the current configuration on the thread pool and returns a
  /// future. The configuration is snapshotted at the call, so the builder
  /// may be reconfigured (or destroyed — the snapshot owns everything it
  /// needs except the attached cache, which must outlive the future)
  /// immediately afterwards. Replacement passes shared with an async
  /// compile must be thread-safe.
  std::future<CompileResult> compileAsync();
  /// One-shot convenience: sets the source, then compiles asynchronously.
  std::future<CompileResult> compileAsync(ProgramBlock block);

  /// Compiles every block with the current options over the thread pool and
  /// returns results in input order. With a cache attached, duplicate
  /// blocks hit once a prior compile finished (concurrent duplicates may
  /// each run the pipeline; all end up with identical results).
  std::vector<CompileResult> compileBatch(std::vector<ProgramBlock> blocks);

private:
  CompileOptions effectiveOptions() const;
  CompileResult runPipeline();
  void ensurePool();

  CompileOptions options_;
  std::optional<ProgramBlock> source_;
  std::vector<std::string> skipped_;
  std::map<std::string, std::shared_ptr<Pass>> replacements_;
  PlanCache* cache_ = nullptr;
  int jobs_ = 0;
  std::shared_ptr<ThreadPool> pool_;
  /// Set on single-use async snapshots: runPipeline() may move the source
  /// block into the pipeline instead of copying it.
  bool consumeSource_ = false;
};

}  // namespace emm
