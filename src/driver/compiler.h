// emm::Compiler — the unified driver for the paper's compilation flow.
//
// One stable entry point replaces the hand-wired stage calls that the tool,
// examples and benches used to duplicate:
//
//   CompileResult r = Compiler(buildMeBlock(ni, nj, w))
//                         .parameters({ni, nj, w})
//                         .memoryLimitBytes(16 * 1024)
//                         .backend("cuda")
//                         .compile();
//   if (!r.ok) { fputs(renderDiagnostics(r.diagnostics).c_str(), stderr); ... }
//   fputs(r.artifact.c_str(), stdout);
//
// The pipeline is the standard PassRegistry order (deps -> transform ->
// tilesearch -> tiling -> smem -> codegen); individual passes can be
// skipped or replaced for experiments and tests. Results are structured:
// the CodeUnit, the parallelism plan, the tile-search outcome, per-pass
// timings, and Diagnostic records instead of ad-hoc strings.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/backend.h"
#include "driver/pass.h"

namespace emm {

class DiskPlanCache;
struct FamilyPlan;
class PlanCache;
struct PlanKey;
class ThreadPool;

/// Wall-clock record of one pipeline stage.
struct PassTiming {
  std::string pass;
  double millis = 0;
  bool ran = false;      ///< run() was invoked
  bool skipped = false;  ///< user-skipped via Compiler::skipPass
};

/// Everything a compilation produced: the pipeline products (block, plan,
/// search outcome, kernel/unit, artifact — see PipelineProducts) plus the
/// verdict, ordered diagnostics, and per-pass timings. Move-only: program
/// blocks live behind unique_ptr so internal back-pointers
/// (CodeUnit::source, DataPlan::block) stay valid when the result moves.
struct CompileResult : PipelineProducts {
  bool ok = false;  ///< pipeline completed without error diagnostics
  /// True when this result came from the PlanCache instead of a pipeline
  /// run. The products are a deep copy of the cached plan; `timings`
  /// describe the run that originally produced it.
  bool cacheHit = false;
  /// True when this result was deserialized from the on-disk plan cache
  /// (DiskPlanCache) instead of a pipeline run; `timings` describe the run
  /// that originally produced the plan. A memory-cache replay of a
  /// disk-loaded plan reports cacheHit only.
  bool diskHit = false;
  /// True when this result was instantiated from the size-generic FAMILY
  /// tier: the pipeline ran, but dependence analysis, the transform search
  /// and/or the symbolic tile-plan build were served from a kernel-family
  /// plan compiled once for the whole `--size` sweep, leaving only the
  /// cheap per-size bind-and-emit stages. Like cacheHit/diskHit this is a
  /// transport flag: cache replays of a family-instantiated plan report
  /// their own tier instead.
  bool familyHit = false;
  /// True when this result was BOUND from the family's size-generic record
  /// (RuntimeBinder): no pipeline run and no emission happened — the
  /// artifact text is the record's, verbatim, and `boundArgs` carries the
  /// runtime kernel-argument values for the requested size. Implies
  /// familyHit. Transport-only: never serialized, cache replays re-derive
  /// their own tier flags.
  bool artifactBound = false;
  /// Runtime kernel arguments filled by the binder, in signature order
  /// (empty unless artifactBound).
  std::vector<std::pair<std::string, i64>> boundArgs;
  std::vector<Diagnostic> diagnostics;
  std::vector<PassTiming> timings;  ///< one entry per pipeline pass, in order

  /// First error message, or "" when ok.
  std::string firstError() const;
  /// Timing entry for a pass, or nullptr.
  const PassTiming* timing(const std::string& pass) const;

  /// Deep copy (results are otherwise move-only); used by the plan cache.
  CompileResult clone() const;
};

/// Builder-style façade over the pass pipeline. Reusable: compile() may be
/// called repeatedly (e.g. with different options between calls).
class Compiler {
public:
  /// An empty builder; set a source via source() or compile(block).
  Compiler() = default;
  /// Builder seeded with a validated source block.
  explicit Compiler(ProgramBlock block) { source(std::move(block)); }

  // ---- configuration ----
  /// Sets (and validates) the block to compile. Throws ApiError on
  /// malformed blocks.
  Compiler& source(ProgramBlock block);
  /// Replaces the entire option set.
  Compiler& options(CompileOptions o);
  /// Direct access to the full option set (for knobs without sugar).
  CompileOptions& opts() { return options_; }
  const CompileOptions& opts() const { return options_; }

  /// Concrete problem-size binding for the block's parameters.
  Compiler& parameters(IntVec values);
  /// Explicit sub-tile sizes (one per common loop); empty runs the search.
  Compiler& tileSizes(std::vector<i64> subTile);
  /// Block-tile sizes per space loop; empty defaults to 2x the sub-tile.
  Compiler& blockTileSizes(std::vector<i64> blockTile);
  /// Thread-tile sizes per space loop; empty defaults to all 1.
  Compiler& threadTileSizes(std::vector<i64> threadTile);
  /// Candidate tile sizes per loop for the search; empty uses a geometric
  /// ladder.
  Compiler& tileCandidates(std::vector<std::vector<i64>> candidates);
  /// Scratchpad capacity in bytes (the Section-4.3 Mup constraint).
  Compiler& memoryLimitBytes(i64 bytes);
  /// Inner-level process count P (warp size on the GPU target).
  Compiler& innerProcs(i64 procs);
  /// Section-4.2 copy hoisting on/off.
  Compiler& hoistCopies(bool on);
  /// When false, the paper's "GPU w/o scratchpad" baseline.
  Compiler& useScratchpad(bool on);
  /// Stages every reference through the local store (Cell-style targets).
  Compiler& stageEverything(bool on);
  /// Reference-grouping mode for the Section-3 partitioner.
  Compiler& partition(PartitionMode mode);
  /// Algorithm-1 constant-reuse threshold (the paper fixes 0.30).
  Compiler& delta(double d);
  /// Runs the Figure-1 flow only (Section-3 planning, no tiling).
  Compiler& scratchpadOnly(bool on = true);
  /// Uses the exhaustive candidate-grid oracle instead of the fast solver.
  Compiler& exhaustiveSearch(bool on = true);
  /// Backend to render with ("c", "cuda", "cell"); resolved at compile().
  Compiler& backend(std::string name);
  /// Function name used in the emitted source.
  Compiler& kernelName(std::string name);

  // ---- service configuration ----
  /// Attaches a plan cache (nullptr detaches). compile() then returns
  /// cached results for (block fingerprint, options hash, skipped passes)
  /// it has seen succeed before, with CompileResult::cacheHit set.
  /// Pipelines with replaced passes bypass the cache. PlanCache::global()
  /// is the process-wide instance.
  Compiler& cache(PlanCache* cache);
  const PlanCache* planCache() const { return cache_; }
  /// Attaches a persistent on-disk cache as the second tier (nullptr
  /// detaches): compile() then resolves memory hit -> disk hit -> cold
  /// compile, promotes disk hits into the attached memory cache, and
  /// writes successful cold compiles back to disk. Disk hits set
  /// CompileResult::diskHit. The cache must outlive the Compiler (and any
  /// futures it spawned); replaced passes bypass both tiers.
  Compiler& diskCache(DiskPlanCache* cache);
  /// Convenience: creates (and owns) a DiskPlanCache rooted at `dir`,
  /// creating the directory if needed. Throws ApiError when the directory
  /// cannot be created.
  Compiler& diskCache(const std::string& dir);
  /// The attached disk tier, or nullptr.
  DiskPlanCache* diskPlanCache() const;
  /// Worker count for compileAsync/compileBatch (0 = hardware default).
  /// The pool is created lazily on the first async/batch call.
  Compiler& jobs(int n);

  // ---- pass control ----
  /// Skips a standard pass. Throws ApiError for names not in the registry.
  Compiler& skipPass(const std::string& name);
  /// Replaces a standard pass with a custom implementation (shared so the
  /// Compiler stays reusable). Throws ApiError for unknown names.
  Compiler& replacePass(const std::string& name, std::shared_ptr<Pass> pass);
  /// Effective pipeline order (skipped passes still listed; they are marked
  /// in CompileResult::timings instead).
  std::vector<std::string> passNames() const;

  // ---- execution ----
  /// Compiles the configured source block. Throws ApiError when no source
  /// was set; all pipeline failures are reported via CompileResult instead.
  CompileResult compile();
  /// One-shot convenience: sets the source, then compiles.
  CompileResult compile(ProgramBlock block);

  /// Compiles the current configuration on the thread pool and returns a
  /// future. The configuration is snapshotted at the call, so the builder
  /// may be reconfigured (or destroyed — the snapshot owns everything it
  /// needs except the attached cache, which must outlive the future)
  /// immediately afterwards. Replacement passes shared with an async
  /// compile must be thread-safe.
  std::future<CompileResult> compileAsync();
  /// One-shot convenience: sets the source, then compiles asynchronously.
  std::future<CompileResult> compileAsync(ProgramBlock block);

  /// Compiles every block with the current options over the thread pool and
  /// returns results in input order. With a cache attached, the batch is
  /// scheduled family-aware: blocks are grouped by family key (same kernel
  /// modulo problem sizes), one leader per family compiles first, and the
  /// remaining members fan out as cheap bind-and-emit followers once the
  /// leader's family plan has landed — so a size sweep runs one cold
  /// pipeline per kernel, not one per size. Duplicate blocks resolve via
  /// the per-size cache tier as before.
  std::vector<CompileResult> compileBatch(std::vector<ProgramBlock> blocks);

  /// Family fast path for services: resolves the block's family in the
  /// ATTACHED MEMORY cache only (lock-free snapshot read) and, when the
  /// family carries a size-generic record, serves the request via
  /// RuntimeBinder — guard check plus argument fill, no pipeline run, no
  /// emission, no disk I/O. Returns nullopt on any miss or guard
  /// rejection; the caller then dispatches a full compile. Cheap enough to
  /// run on a connection thread ahead of the compile pool.
  std::optional<CompileResult> tryBindFamily(const ProgramBlock& block);

private:
  CompileOptions effectiveOptions() const;
  CompileResult runPipeline(std::shared_ptr<const FamilyPlan> familyIn = nullptr,
                            std::shared_ptr<FamilyPlan>* familyOut = nullptr);
  /// Disk lookup -> cold compile -> disk write-back; the "compute" half of
  /// the tiered flow (runs as the single-flight leader when a memory cache
  /// is attached).
  CompileResult computeWithDiskTier(const PlanKey& key);
  void ensurePool();

  CompileOptions options_;
  std::optional<ProgramBlock> source_;
  std::vector<std::string> skipped_;
  std::map<std::string, std::shared_ptr<Pass>> replacements_;
  PlanCache* cache_ = nullptr;
  DiskPlanCache* diskCache_ = nullptr;
  /// Owns the cache created by diskCache(dir); shared so async snapshots
  /// keep it alive.
  std::shared_ptr<DiskPlanCache> ownedDiskCache_;
  int jobs_ = 0;
  std::shared_ptr<ThreadPool> pool_;
  /// Set on single-use async snapshots: runPipeline() may move the source
  /// block into the pipeline instead of copying it.
  bool consumeSource_ = false;
};

}  // namespace emm
