#include "driver/pass.h"

#include <utility>

#include "driver/backend.h"
#include "support/diagnostics.h"
#include "tilesearch/tile_evaluator.h"

namespace emm {

namespace {

/// Deep copy of a CodeUnit with its source pointer rebound.
CodeUnit cloneUnit(const CodeUnit& u, const ProgramBlock* source) {
  CodeUnit out;
  out.name = u.name;
  out.source = source;
  out.statements = u.statements;
  out.localBuffers = u.localBuffers;
  out.root = u.root ? u.root->clone() : nullptr;
  return out;
}

}  // namespace

// NOTE: field-by-field copy of PipelineProducts, TiledKernel, TileAnalysis
// and (via cloneUnit) CodeUnit. A field added to any of those structs must
// be added here too — and to the serializers (plus their schema manifest)
// in support/serialize.cpp — or warm plan-cache hits and disk replays will
// silently drop it; see the warning on the struct in pass.h.
PipelineProducts PipelineProducts::clone() const {
  PipelineProducts out;
  if (input) out.input = std::make_unique<ProgramBlock>(*input);
  if (transformed) out.transformed = std::make_unique<ProgramBlock>(*transformed);
  // Rebinds a pointer into this object's blocks to the copy's blocks.
  auto remapBlock = [&](const ProgramBlock* p) -> const ProgramBlock* {
    if (p == input.get()) return out.input.get();
    if (p == transformed.get()) return out.transformed.get();
    return nullptr;
  };
  out.deps = deps;
  out.haveDeps = haveDeps;
  out.plan = plan;
  out.havePlan = havePlan;
  out.appliedSkews = appliedSkews;
  out.search = search;
  out.geometryHints = geometryHints;
  if (kernel) {
    TiledKernel k;
    k.analysis.depth = kernel->analysis.depth;
    k.analysis.subTile = kernel->analysis.subTile;
    k.analysis.originParams = kernel->analysis.originParams;
    k.analysis.tileParams = kernel->analysis.tileParams;
    k.analysis.loopBounds = kernel->analysis.loopBounds;
    k.analysis.hoistLevel = kernel->analysis.hoistLevel;
    if (kernel->analysis.tileBlock)
      k.analysis.tileBlock = std::make_unique<ProgramBlock>(*kernel->analysis.tileBlock);
    k.analysis.plan = kernel->analysis.plan;
    k.analysis.plan.block = k.analysis.tileBlock.get();
    k.unit = cloneUnit(kernel->unit, k.analysis.tileBlock.get());
    k.spaceLoops = kernel->spaceLoops;
    k.blockTileSizes = kernel->blockTileSizes;
    k.spaceLoopRange = kernel->spaceLoopRange;
    out.kernel.emplace(std::move(k));
  }
  if (scratchpadUnit)
    out.scratchpadUnit.emplace(cloneUnit(*scratchpadUnit, remapBlock(scratchpadUnit->source)));
  if (blockPlan) {
    out.blockPlan = blockPlan;
    out.blockPlan->block = remapBlock(blockPlan->block);
  }
  out.bufferLayout = bufferLayout;  // SymExpr nodes are immutable and shared
  out.artifactInfo = artifactInfo;  // likewise: guards/slots share SymExpr nodes
  out.artifact = artifact;
  return out;
}

void CompileState::note(const std::string& stage, const std::string& message) {
  diagnostics.push_back({Severity::Note, stage, message});
}

void CompileState::warn(const std::string& stage, const std::string& message) {
  diagnostics.push_back({Severity::Warning, stage, message});
}

void CompileState::error(const std::string& stage, const std::string& message) {
  diagnostics.push_back({Severity::Error, stage, message});
  failed = true;
}

void PassRegistry::add(const std::string& name, Factory factory) {
  EMM_REQUIRE(!contains(name), "pass '" + name + "' already registered");
  EMM_REQUIRE(factory != nullptr, "null factory for pass '" + name + "'");
  order_.push_back(name);
  factories_.push_back(std::move(factory));
}

bool PassRegistry::contains(const std::string& name) const {
  for (const std::string& n : order_)
    if (n == name) return true;
  return false;
}

PassPtr PassRegistry::create(const std::string& name) const {
  for (size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == name) return factories_[i]();
  throw ApiError("unknown pass '" + name + "'");
}

namespace {

std::string joinInts(const std::vector<i64>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) out += (i ? "," : "") + std::to_string(v[i]);
  return out;
}

// ---- deps: dependence polyhedra over all reference pairs. ----
class DepsPass : public Pass {
public:
  DepsPass() : Pass("deps") {}
  void run(CompileState& s) override {
    if (s.familyIn != nullptr && s.familyIn->haveDeps) {
      // Dependences are family-invariant: domains, access functions and
      // schedules never mention the concrete array extents, so the
      // family's polyhedra are exactly what computeDependences would
      // rebuild for this member.
      s.deps = s.familyIn->deps;
      s.haveDeps = true;
      s.familyUsed = true;
      s.note(name(), std::to_string(s.deps.size()) + " dependences (family tier)");
      return;
    }
    s.deps = computeDependences(s.currentBlock());
    s.haveDeps = true;
    if (s.familyOut != nullptr) {
      s.familyOut->deps = s.deps;
      s.familyOut->haveDeps = true;
    }
    s.note(name(), std::to_string(s.deps.size()) + " dependences");
  }
};

// ---- transform: enabling shifts/skews + space/time classification. ----
class TransformPass : public Pass {
public:
  TransformPass() : Pass("transform") {}
  void run(CompileState& s) override {
    if (s.options.mode == PipelineMode::ScratchpadOnly) {
      s.note(name(), "scratchpad-only pipeline: transformation skipped");
      return;
    }
    if (s.familyIn != nullptr && s.familyIn->haveTransform) {
      // The enabling transformation is derived from the (family-invariant)
      // dependences and touches statements and schedules only, so the
      // family's transformed block is reused with this member's array
      // table swapped in — the skew search is skipped entirely.
      ProgramBlock t = s.familyIn->transformedTemplate;
      t.arrays = s.input->arrays;
      s.transformed = std::make_unique<ProgramBlock>(std::move(t));
      s.plan = s.familyIn->plan;
      s.havePlan = true;
      s.appliedSkews = s.familyIn->appliedSkews;
      s.familyUsed = true;
      s.note(name(), "transformation adopted from the family tier");
    } else {
      TransformResult tr = makeTilable(*s.input);
      s.transformed = std::make_unique<ProgramBlock>(std::move(tr.block));
      s.plan = std::move(tr.plan);
      s.havePlan = true;
      s.appliedSkews = std::move(tr.appliedSkews);
      if (s.familyOut != nullptr) {
        s.familyOut->transformedTemplate = *s.transformed;
        s.familyOut->plan = s.plan;
        s.familyOut->appliedSkews = s.appliedSkews;
        s.familyOut->haveTransform = true;
      }
    }
    for (const auto& [target, srcFactor] : s.appliedSkews)
      s.note(name(), "skewed loop " + std::to_string(target) + " by loop " +
                         std::to_string(srcFactor.first) + " (factor " +
                         std::to_string(srcFactor.second) + ")");
    std::string spaces;
    for (int l : s.plan.spaceLoops) spaces += (spaces.empty() ? "" : ",") + std::to_string(l);
    s.note(name(), "band size " + std::to_string(s.plan.band.size()) + ", space loops [" +
                       spaces + "]");
    if (s.plan.needsInterBlockSync)
      s.warn(name(),
             "band needs inter-block synchronization (pipeline parallelism); "
             "the Figure-3 tiler does not apply — falling back to block-level "
             "scratchpad analysis");
  }
};

// ---- tilesearch: Section 4.3 sub-tile selection (or evaluation). ----
class TileSearchPass : public Pass {
public:
  TileSearchPass() : Pass("tilesearch") {}
  void run(CompileState& s) override {
    if (s.options.mode == PipelineMode::ScratchpadOnly || !s.havePlan ||
        s.plan.needsInterBlockSync) {
      s.note(name(), "not applicable on this pipeline path");
      // Record WHY the family has no size-generic tile plan, so sweeps over
      // such kernels show the degradation in --emit=stats instead of
      // silently compiling per size.
      s.search.parametricReason =
          s.options.mode == PipelineMode::ScratchpadOnly
              ? "scratchpad-only pipeline: no tile search"
              : (!s.havePlan ? "no parallelism plan: no tile search"
                             : "pipeline-parallel band: no tile search");
      if (s.familyOut != nullptr) s.familyOut->parametricReason = s.search.parametricReason;
      return;
    }
    const ProgramBlock& block = s.currentBlock();
    TileSearchOptions topts = s.options.tileSearchOptions();
    SmemOptions smem = s.options.smemOptions();
    if (!s.options.subTile.empty()) {
      // Explicit tile sizes: evaluate the Section-4.3 objective for them so
      // the result still carries cost/footprint/per-buffer terms. Candidate
      // ladders are irrelevant on this path (and historically ignored), so
      // drop them: an unrelated candidate arity mismatch must not fail an
      // explicitly tiled compile. A one-shot evaluation gains nothing from
      // a symbolic plan, so it stays on the concrete path.
      topts.candidates.clear();
      topts.parametric = false;
      TileEvaluator evaluator(block, s.plan, topts, smem);
      s.search.subTile = s.options.subTile;
      s.search.eval = evaluator.evaluate(s.options.subTile);
      s.search.evaluations = 1;
      if (!s.search.eval.feasible)
        s.warn(name(), "given tile (" + joinInts(s.options.subTile) +
                           ") violates the model constraints: " + s.search.eval.reason);
      else
        s.note(name(), "evaluated given tile (" + joinInts(s.options.subTile) + "), cost " +
                           std::to_string(s.search.eval.cost) + ", footprint " +
                           std::to_string(s.search.eval.footprint) + " elems");
      return;
    }
    // One evaluator per compile: all probes (descent sweeps, seeds, the
    // exhaustive oracle) share its candidate memo, loop bounds, and (when
    // the block admits one) the symbolic Section-3 plan.
    TileEvaluator evaluator(block, s.plan, topts, smem);
    if (s.familyIn != nullptr && s.familyIn->tilePlan != nullptr)
      evaluator.adoptFamilyPlan(s.familyIn->tilePlan);
    s.search = s.options.searchMode == TileSearchMode::Exhaustive
                   ? exhaustiveTileSearch(evaluator)
                   : searchTileSizes(evaluator);
    if (s.search.familyAdopted) {
      s.familyUsed = true;
      s.note(name(), "family plan bound at this problem size (probe-revalidated)");
    }
    if (s.familyOut != nullptr) {
      // Publish the size-generic plan for the rest of the family — or the
      // fallback reason, so degraded families stay visible in stats.
      s.familyOut->tilePlan = evaluator.sharedPlan();
      s.familyOut->parametricReason = evaluator.fallbackReason();
    }
    if (s.search.prunedBoxes > 0)
      s.note(name(), std::to_string(s.search.prunedBoxes) +
                         " candidate boxes pruned by the footprint interval");
    s.subTimings.emplace_back(name() + ".plan", s.search.planBuildMillis);
    s.subTimings.emplace_back(name() + ".eval", s.search.evalMillis);
    if (s.search.parametric) {
      s.note(name(), "parametric plan built in " +
                         std::to_string(s.search.planBuildMillis) +
                         " ms; candidate evaluation took " +
                         std::to_string(s.search.evalMillis) + " ms total");
    } else if (topts.parametric) {
      s.warn(name(), "parametric tile analysis fell back to concrete evaluation: " +
                         s.search.parametricReason);
    }
    if (!s.search.eval.feasible) {
      s.error(name(), "no feasible tile: " + s.search.eval.reason);
      return;
    }
    // Hand the tiler the buffer geometry instantiated at the chosen tile so
    // the Section-3 planner adopts (and merely re-verifies) those bounds.
    if (const ParametricTilePlan* plan = evaluator.parametricPlan())
      s.geometryHints = plan->instantiateGeometry(s.search.subTile);
    s.note(name(), "chose tile (" + joinInts(s.search.subTile) + "), cost " +
                       std::to_string(s.search.eval.cost) + ", footprint " +
                       std::to_string(s.search.eval.footprint) + " elems, " +
                       std::to_string(s.search.evaluations) + " evaluations (" +
                       std::to_string(evaluator.analysesRun()) + " analyzed, " +
                       std::to_string(s.search.memoHits) + " memo hits)");
  }
};

// ---- tiling: the Figure-3 multi-level tiled kernel. ----
class TilingPass : public Pass {
public:
  TilingPass() : Pass("tiling") {}
  void run(CompileState& s) override {
    if (s.options.mode == PipelineMode::ScratchpadOnly || !s.havePlan ||
        s.plan.needsInterBlockSync) {
      s.note(name(), "not applicable on this pipeline path");
      return;
    }
    // Prefer the search outcome; fall back to explicitly given sizes when
    // the tilesearch pass was skipped.
    TileConfig tc;
    tc.subTile = s.search.subTile.empty() ? s.options.subTile : s.search.subTile;
    if (tc.subTile.empty()) {
      s.error(name(), "no sub-tile sizes: tile search skipped and none given");
      return;
    }
    tc.hoistCopies = s.options.hoistCopies;
    tc.useScratchpad = s.options.useScratchpad;
    const size_t nspace = s.plan.spaceLoops.size();
    if (!s.options.blockTile.empty()) {
      EMM_REQUIRE(s.options.blockTile.size() == nspace,
                  "blockTile must have one entry per space loop");
      tc.blockTile = s.options.blockTile;
    } else {
      for (int loop : s.plan.spaceLoops) tc.blockTile.push_back(tc.subTile[loop] * 2);
    }
    if (!s.options.threadTile.empty()) {
      EMM_REQUIRE(s.options.threadTile.size() == nspace,
                  "threadTile must have one entry per space loop");
      tc.threadTile = s.options.threadTile;
    } else {
      tc.threadTile.assign(nspace, 1);
    }
    SmemOptions smem = s.options.smemOptions();
    smem.geometryHints = s.geometryHints;
    s.kernel = buildTiledKernel(s.currentBlock(), s.plan, tc, smem);
    s.note(name(), "tiled kernel with " + std::to_string(s.kernel->unit.localBuffers.size()) +
                       " local buffers, block tile (" + joinInts(tc.blockTile) + ")");
  }
};

// ---- smem: Section-3 planning summary / block-level fallback. ----
class SmemPass : public Pass {
public:
  SmemPass() : Pass("smem") {}
  void run(CompileState& s) override {
    if (s.kernel) {
      // The tiled path ran the Section-3 framework per sub-tile inside the
      // tiler; just summarize its verdicts.
      int buffered = 0;
      for (const PartitionPlan& p : s.kernel->analysis.plan.partitions)
        if (p.hasBuffer) ++buffered;
      s.note(name(), std::to_string(buffered) + "/" +
                         std::to_string(s.kernel->analysis.plan.partitions.size()) +
                         " partitions buffered in scratchpad");
      planLayout(s, s.kernel->unit);
      return;
    }
    SmemOptions smem = s.options.smemOptions();
    if (s.options.mode == PipelineMode::ScratchpadOnly) {
      DataPlan plan;
      CodeUnit unit = buildScratchpadUnit(s.currentBlock(), smem, plan);
      s.scratchpadUnit = std::move(unit);
      s.blockPlan = std::move(plan);
      planLayout(s, *s.scratchpadUnit);
    } else {
      // Pipeline-parallel fallback (or tiling skipped): analysis only; the
      // concurrent-start mapped kernels in src/kernels execute these bands.
      s.blockPlan = analyzeBlock(s.currentBlock(), smem);
    }
    int buffered = 0;
    for (const PartitionPlan& p : s.blockPlan->partitions)
      if (p.hasBuffer) ++buffered;
    s.note(name(), std::to_string(buffered) + "/" +
                       std::to_string(s.blockPlan->partitions.size()) +
                       " partitions buffered in scratchpad");
  }

private:
  /// Packs the unit's buffers into the banked arena layout and writes the
  /// chosen pads back into the unit, so every emitter and the interpreter
  /// see the padded geometry. The layout itself is published as a product.
  void planLayout(CompileState& s, CodeUnit& unit) {
    if (!s.options.packBuffers || unit.localBuffers.empty()) return;
    BufferLayoutOptions lo;
    lo.bank.banks = s.options.smemBanks;
    lo.bank.widthBytes = s.options.smemBankWidthBytes;
    lo.elementBytes = s.options.elementBytes;
    // Double-buffering halves the per-instance budget (tileSearchOptions
    // applies the same split) so the rotated buffers fit the full store.
    lo.memLimitBytes =
        s.options.doubleBuffer ? s.options.memLimitBytes / 2 : s.options.memLimitBytes;
    lo.paramValues = s.options.paramValues;
    BufferLayout layout = planBufferLayout(unit, lo);
    applyBufferLayout(unit, layout);
    if (!layout.note.empty()) s.warn(name(), layout.note);
    IntVec sample = s.options.paramValues;
    sample.resize(unit.source->paramNames.size(), 0);
    s.note(name(), "buffer layout: " + std::to_string(layout.buffers.size()) +
                       " buffers packed into " + std::to_string(layout.totalBytes(sample)) +
                       " bytes (" + std::to_string(layout.paddingBytes(sample)) +
                       " pad bytes, " + std::to_string(layout.bank.banks) + " banks)");
    s.bufferLayout.emplace(std::move(layout));
  }
};

// ---- codegen: render through the registered backend. ----
class CodegenPass : public Pass {
public:
  CodegenPass() : Pass("codegen") {}
  void run(CompileState& s) override {
    const Backend* backend = BackendRegistry::global().lookup(s.options.backendName);
    if (backend == nullptr) {
      std::string known;
      for (const std::string& n : BackendRegistry::global().names())
        known += (known.empty() ? "" : ", ") + n;
      s.error(name(),
              "unknown backend '" + s.options.backendName + "' (registered: " + known + ")");
      return;
    }
    const CodeUnit* unit = s.unit();
    if (unit == nullptr) {
      s.warn(name(), "no code unit on this pipeline path; nothing to emit");
      return;
    }
    ArtifactInfo info;
    const BufferLayout* layout = s.bufferLayout ? &*s.bufferLayout : nullptr;
    s.artifact = backend->emit(*unit, s.options, layout, &info);
    if (info.sizeGeneric) appendLayoutGuards(s, *unit, layout, info);
    if (info.sizeGeneric)
      s.note(name(), "size-generic artifact: " + std::to_string(info.slots.size()) +
                         " bind slots, " + std::to_string(info.guards.size()) +
                         " guard predicates");
    else if (!info.note.empty())
      s.note(name(), "artifact bakes sizes: " + info.note);
    s.artifactInfo.emplace(std::move(info));
    s.note(name(), "emitted " + std::to_string(s.artifact.size()) + " bytes of " +
                       backend->name() + " source");
  }

private:
  /// Backend-independent validity guards derived from the layout decisions
  /// that were taken at this compile's sample sizes. A bound artifact is
  /// byte-identical to a per-size compile exactly when those decisions
  /// would repeat, so each one is pinned:
  ///  - the packed-vs-flat verdict, via the arena-fits-budget inequality
  ///    (a fallback layout is size-dependent and disables binding instead);
  ///  - every conflict pad, by fixing the innermost extent the pad was
  ///    chosen from wherever it depends on a problem size.
  void appendLayoutGuards(CompileState& s, const CodeUnit& unit, const BufferLayout* layout,
                          ArtifactInfo& info) {
    if (layout == nullptr) return;
    if (!layout->note.empty()) {
      info.sizeGeneric = false;
      info.note = "buffer layout fell back (" + layout->note +
                  "); pad decisions are size-dependent, artifact stays per-size";
      return;
    }
    std::vector<i64> sample(s.options.paramValues.begin(), s.options.paramValues.end());
    sample.resize(unit.source == nullptr ? sample.size() : unit.source->paramNames.size(), 0);
    const i64 limit =
        s.options.doubleBuffer ? s.options.memLimitBytes / 2 : s.options.memLimitBytes;
    FamilyGuard fit;
    fit.kind = FamilyGuard::Kind::SymLe;
    fit.lhs = SymExpr::mul(layout->totalElems, SymExpr::constant(layout->elementBytes));
    fit.rhs = SymExpr::constant(limit);
    fit.what = "packed arena exceeds the " + std::to_string(limit) + "-byte scratchpad budget";
    info.guards.push_back(std::move(fit));
    for (const BufferLayoutEntry& e : layout->buffers) {
      if (e.extent.empty() || e.extent.back() == nullptr) continue;
      const SymPtr& inner = e.extent.back();
      if (inner->maxParamIndex() < 0) continue;
      FamilyGuard g;
      g.kind = FamilyGuard::Kind::SymEq;
      g.lhs = inner;
      g.rhs = SymExpr::constant(inner->eval(sample));
      g.what = "conflict pad for " + e.name + " chosen at innermost extent " +
               std::to_string(g.rhs->constValue());
      info.guards.push_back(std::move(g));
    }
  }
};

}  // namespace

const PassRegistry& PassRegistry::standard() {
  static const PassRegistry* reg = [] {
    auto* r = new PassRegistry;
    r->add("deps", [] { return PassPtr(new DepsPass); });
    r->add("transform", [] { return PassPtr(new TransformPass); });
    r->add("tilesearch", [] { return PassPtr(new TileSearchPass); });
    r->add("tiling", [] { return PassPtr(new TilingPass); });
    r->add("smem", [] { return PassPtr(new SmemPass); });
    r->add("codegen", [] { return PassPtr(new CodegenPass); });
    return r;
  }();
  return *reg;
}

}  // namespace emm
