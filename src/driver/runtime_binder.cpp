#include "driver/runtime_binder.h"

#include <chrono>

#include "driver/family_plan.h"
#include "support/diagnostics.h"

namespace emm {

namespace {

void explain(std::vector<Diagnostic>* diags, const std::string& message) {
  if (diags != nullptr) diags->push_back({Severity::Note, "bind", message});
}

/// Same array table modulo extents: the record's blocks can adopt the
/// request's arrays by plain assignment.
bool sameArrayShape(const std::vector<ArrayDecl>& a, const std::vector<ArrayDecl>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].name != b[i].name || a[i].extents.size() != b[i].extents.size()) return false;
  return true;
}

}  // namespace

void attachFamilyRecord(FamilyPlan& family, const CompileResult& result,
                        const CompileOptions& options) {
  if (!result.ok || !result.artifactInfo.has_value() || !result.artifactInfo->sizeGeneric)
    return;
  if (result.artifact.empty() || result.unit() == nullptr) return;
  family.recordOptions = options;
  family.record = std::make_shared<CompileResult>(result.clone());
  family.haveRecord = true;
}

std::optional<CompileResult> bindFamilyArtifact(const FamilyPlan& family,
                                                const ProgramBlock& request,
                                                const CompileOptions& options,
                                                std::vector<Diagnostic>* diagnostics) {
  const auto start = std::chrono::steady_clock::now();
  if (!family.haveRecord || family.record == nullptr) return std::nullopt;
  const CompileResult& rec = *family.record;

  // 1. Identity: the family key neutralizes the codegen-only options, so a
  // record emitted for another target must not serve this request.
  const CompileOptions& ro = family.recordOptions;
  if (ro.backendName != options.backendName || ro.kernelName != options.kernelName ||
      ro.elementType != options.elementType || ro.numBoundParams != options.numBoundParams ||
      !options.runtimeSizeArgs) {
    explain(diagnostics, "family record targets backend '" + ro.backendName +
                             "' kernel '" + ro.kernelName + "'; request differs, bind-and-emit");
    return std::nullopt;
  }
  const IntVec& sizes = options.paramValues;
  if (rec.input == nullptr || rec.unit() == nullptr || !rec.artifactInfo.has_value() ||
      !sameArrayShape(rec.input->arrays, request.arrays)) {
    explain(diagnostics, "request array table does not match the family record");
    return std::nullopt;
  }

  // 2. Argmin re-certification: a per-size compile re-runs the tile search
  // at its own size, so the record may only serve sizes where its tile
  // choice is still THE chosen one — mere feasibility is not enough, the
  // cost-model argmin can move with the problem size. The plan-only
  // re-search is pure expression evaluation (no analysis, no emission) and
  // its outcome becomes the bound result's search record, so the reported
  // cost/footprint are this size's, not the record's. Records from
  // no-search pipelines (scratchpad-only / pipeline-parallel fallback) made
  // no tile decision at all: nothing can move with size, and the step-3
  // guards carry the whole envelope contract.
  if (!options.subTile.empty()) {
    explain(diagnostics, "explicitly tiled request; bind-and-emit");
    return std::nullopt;
  }
  const bool hasTileChoice = !rec.search.subTile.empty();
  TileSearchResult search;
  if (hasTileChoice) {
    if (family.tilePlan == nullptr) {
      explain(diagnostics, "family record has no parametric tile plan to re-certify against");
      return std::nullopt;
    }
    try {
      ParametricTilePlan::SizeBinding binding = family.tilePlan->bindSizes(sizes);
      search = searchTileSizesWithPlan(*family.tilePlan, binding, options.tileSearchOptions(),
                                       options.searchMode == TileSearchMode::Exhaustive);
      if (!search.eval.feasible) {
        explain(diagnostics, "no feasible tile at this size; bind-and-emit");
        return std::nullopt;
      }
      if (search.subTile != rec.search.subTile) {
        explain(diagnostics,
                "tile argmin moved at this size; the record's choice is no longer "
                "optimal, bind-and-emit");
        return std::nullopt;
      }
    } catch (const ApiError& e) {
      explain(diagnostics, std::string("size binding rejected: ") + e.what());
      return std::nullopt;
    }
  }

  // 3. Guards: the emitted text is valid only inside the size envelope the
  // record's layout decisions were taken in. Violations reject cleanly —
  // never a wrong answer — and the caller re-emits for this size.
  const ArtifactInfo& info = *rec.artifactInfo;
  int need = static_cast<int>(sizes.size());
  auto track = [&](const SymPtr& e) {
    if (e != nullptr) need = std::max(need, e->maxParamIndex() + 1);
  };
  for (const FamilyGuard& g : info.guards) {
    track(g.lhs);
    track(g.rhs);
  }
  for (const BindSlot& s : info.slots) track(s.formula);
  IntVec env = sizes;
  env.resize(static_cast<size_t>(need), 0);
  // Named env for folded local-store extents, exactly as the emitter built
  // it: the leading (bound) parameters of the record unit's source block.
  const CodeUnit* unit = rec.unit();
  std::vector<std::pair<std::string, i64>> namedEnv;
  const size_t bound = options.numBoundParams < 0
                           ? sizes.size()
                           : static_cast<size_t>(options.numBoundParams);
  for (size_t j = 0; j < bound && j < sizes.size() && j < unit->source->paramNames.size(); ++j)
    namedEnv.emplace_back(unit->source->paramNames[j], sizes[j]);
  for (const FamilyGuard& g : info.guards) {
    bool holds = true;
    switch (g.kind) {
      case FamilyGuard::Kind::SymLe:
        holds = g.lhs != nullptr && g.rhs != nullptr && g.lhs->eval(env) <= g.rhs->eval(env);
        break;
      case FamilyGuard::Kind::SymEq:
        holds = g.lhs != nullptr && g.rhs != nullptr && g.lhs->eval(env) == g.rhs->eval(env);
        break;
      case FamilyGuard::Kind::BufExtentEq: {
        if (g.bufferIndex < 0 ||
            g.bufferIndex >= static_cast<int>(unit->localBuffers.size()) || g.dim < 0 ||
            g.dim >= unit->localBuffers[g.bufferIndex].ndim) {
          holds = false;
          break;
        }
        holds = unit->localBuffers[g.bufferIndex].paddedExtent(g.dim, namedEnv) == g.expected;
        break;
      }
    }
    if (!holds) {
      explain(diagnostics, "size outside the family envelope: " + g.what +
                               "; re-emitting for this size");
      return std::nullopt;
    }
  }

  // 4. Argument fill + product swap: the request's concrete array extents
  // replace the record's everywhere a block rides along, so interpreters
  // and stride consumers see this member's geometry.
  CompileResult out = rec.clone();
  std::vector<std::pair<std::string, i64>> args;
  for (const BindSlot& s : info.slots) {
    i64 v = 0;
    switch (s.kind) {
      case BindSlot::Kind::SizeParam:
        if (s.a < 0 || s.a >= static_cast<int>(sizes.size())) {
          explain(diagnostics, "bind slot '" + s.name + "' references a missing size");
          return std::nullopt;
        }
        v = sizes[s.a];
        break;
      case BindSlot::Kind::ArrayExtent:
        if (s.a < 0 || s.a >= static_cast<int>(request.arrays.size()) || s.b < 0 ||
            s.b >= static_cast<int>(request.arrays[s.a].extents.size())) {
          explain(diagnostics, "bind slot '" + s.name + "' references a missing array extent");
          return std::nullopt;
        }
        v = request.arrays[s.a].extents[s.b];
        break;
      case BindSlot::Kind::Formula:
        if (s.formula == nullptr) {
          explain(diagnostics, "bind slot '" + s.name + "' carries no formula");
          return std::nullopt;
        }
        v = s.formula->eval(env);
        break;
    }
    args.emplace_back(s.name, v);
  }
  if (hasTileChoice) out.search = std::move(search);
  if (out.input != nullptr) out.input->arrays = request.arrays;
  if (out.transformed != nullptr) out.transformed->arrays = request.arrays;
  if (out.kernel.has_value() && out.kernel->analysis.tileBlock != nullptr &&
      sameArrayShape(out.kernel->analysis.tileBlock->arrays, request.arrays))
    out.kernel->analysis.tileBlock->arrays = request.arrays;

  out.ok = true;
  out.cacheHit = false;
  out.diskHit = false;
  out.familyHit = true;
  out.artifactBound = true;
  out.boundArgs = std::move(args);
  out.diagnostics.clear();
  std::string sizeText;
  for (size_t j = 0; j < sizes.size(); ++j)
    sizeText += (j ? "," : "") + std::to_string(sizes[j]);
  out.diagnostics.push_back(
      {Severity::Note, "bind",
       "family record bound at size (" + sizeText + "): " +
           std::to_string(out.boundArgs.size()) + " runtime args filled, " +
           std::to_string(info.guards.size()) + " guards passed, no emission"});
  const auto end = std::chrono::steady_clock::now();
  PassTiming t;
  t.pass = "bind";
  t.millis = std::chrono::duration<double, std::milli>(end - start).count();
  t.ran = true;
  out.timings.clear();
  out.timings.push_back(std::move(t));
  return out;
}

}  // namespace emm
