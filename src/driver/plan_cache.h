// PlanCache: memoized compilation results for the service layer.
//
// The benches and any service built on emm::Compiler re-compile identical
// blocks constantly (the same ME/matmul shapes with the same options). A
// PlanCache keys a finished CompileResult on the structural fingerprint of
// the source block plus the canonical hash of the option set (plus the
// skipped-pass set), and hands out deep, independently owned copies, so a
// warm compile costs one clone instead of the full pipeline.
//
// What is cached: the complete, re-emittable plan products — the rendered
// artifact, the tiled kernel / scratchpad unit IR, the data plan, the
// tile-search outcome, the diagnostics, and the per-pass timings of the
// producing run (a hit's timings describe how the plan was originally
// built; CompileResult::cacheHit tells the two apart). Only `ok` results
// are inserted. Pipelines with replaced passes are never cached (arbitrary
// code cannot be fingerprinted); Compiler::compile() skips the cache for
// them.
//
// Sharding: at daemon traffic levels a single cache mutex, not the
// pipeline, is the throughput ceiling — every warm hit serializes on it.
// The cache is therefore split into N shards (N = next power of two of the
// hardware concurrency by default, clamped so every shard owns at least one
// entry of capacity), selected by a mixed fingerprint of the key. Each
// shard has its own mutex, LRU recency list, in-flight map and counters,
// so requests for different shards never contend. Capacity is split across
// the shards (shard i gets capacity/N, the remainder distributed one
// each), and eviction is per shard: the shard's least recently USED entry
// goes, not its oldest insert. Hits re-touch their entry — under the shard
// mutex when the lookup already holds it, and via try_lock from the
// lock-free snapshot path, so a warm hit never blocks on a writer (a
// skipped touch under contention makes the recency order approximate;
// with `shards = 1` and no concurrency it is exact). A single-shard cache
// (`shards = 1`) reproduces the old global single-mutex behavior exactly —
// tests that need deterministic global eviction order and benchmark
// baselines use it.
//
// Lock-free warm path: every mutation republishes the shard's entry map as
// an immutable copy-on-write snapshot behind a `std::atomic<
// std::shared_ptr<const ...>>` (an epoch publication: writers install a new
// epoch under the shard mutex; readers atomically load whichever epoch is
// current). Result and family lookups probe the snapshot first and touch
// the shard mutex only on a snapshot miss (cold key, or a key whose epoch
// has not propagated yet) — a warm hit performs zero lock acquisitions. A
// stale snapshot can only under-report (a just-inserted key falls through
// to the mutex path; a just-evicted entry is served one last time, exactly
// as if the lookup had run before the eviction), never serve a wrong plan:
// entries are immutable once published and keyed by collision-guarded
// fingerprints.
//
// Counters are per-shard relaxed atomics. Hit counts are bumped off-lock on
// the snapshot path; miss/eviction counts flip under the shard mutex, so a
// stats() snapshot of one shard is internally coherent (entries never
// exceed misses) and totals across shards are exact once traffic quiesces.
//
// This is the first tier of a two-tier hierarchy: driver/disk_cache.h
// persists plans across processes, and Compiler::compile() resolves
// memory hit -> disk hit (promoted here) -> cold compile.
//
// Single-flight: getOrCompute() collapses concurrent misses on the same key
// to ONE pipeline run. The first caller becomes the leader and computes;
// followers block on a per-key in-flight latch and receive the leader's
// result as a cache hit, so a batch of identical kernels performs exactly
// one compile no matter how many workers race. The latch, like everything
// keyed, lives on the key's shard: a leader failure wakes exactly the
// followers parked on that shard's condition variable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "driver/compiler.h"
#include "driver/family_plan.h"
#include "support/fingerprint.h"

namespace emm {

/// Cache key: (block fingerprint, options fingerprint, skipped-pass set).
struct PlanKey {
  u64 block = 0;    ///< hashProgramBlock of the source
  u64 options = 0;  ///< hashCompileOptions of the effective option set
  u64 passes = 0;   ///< digest of the sorted skipped-pass names

  auto operator<=>(const PlanKey&) const = default;
};

/// Memoizes finished CompileResults by PlanKey (see file comment).
class PlanCache {
public:
  /// Counter totals aggregated over the shards. Each shard's contribution
  /// is read coherently (entries with the misses that produced them), so
  /// cross-field invariants like entries <= misses hold in every snapshot;
  /// totals are exact whenever no lookup is concurrently in flight.
  struct Stats {
    i64 hits = 0;       ///< lookups served from the cache
    i64 misses = 0;     ///< lookups that fell through (or led a compute)
    i64 entries = 0;    ///< results currently stored
    i64 evictions = 0;  ///< entries dropped by the capacity bound
    // Family tier (size-generic kernel-family plans; see family_plan.h).
    i64 familyHits = 0;       ///< family lookups served from the tier
    i64 familyMisses = 0;     ///< family lookups that fell through
    i64 familyEntries = 0;    ///< family plans currently stored
    i64 familyEvictions = 0;  ///< family plans dropped by the capacity bound
  };

  /// `capacity` = max entries before insertion-order eviction (>= 1),
  /// split across the shards. `shards` = 0 picks the next power of two of
  /// the hardware concurrency (clamped so each shard owns capacity);
  /// `shards` = 1 is the exact single-mutex behavior of the pre-sharded
  /// cache. Non-power-of-two counts are rounded up.
  explicit PlanCache(size_t capacity = 1024, size_t shards = 0);

  /// Number of shards actually in use (a power of two).
  size_t shardCount() const { return shardCount_; }
  /// Index of the shard serving `key` / a family key — stable for a given
  /// shard count. Exposed for shard-boundary tests and diagnostics.
  size_t shardOf(const PlanKey& key) const;
  size_t shardOfFamily(const FamilyKey& key) const;

  /// Returns an independently owned copy of the cached result with
  /// cacheHit set, or nullopt (counting a miss). Warm hits are served from
  /// the shard's lock-free snapshot.
  std::optional<CompileResult> lookup(const PlanKey& key);

  /// Stores a snapshot of `result` under `key`, overwriting any previous
  /// entry and evicting the shard's least recently used entry when over
  /// its capacity. Both a fresh insert and an overwrite count as a use.
  void insert(const PlanKey& key, const CompileResult& result);

  /// Single-flight lookup-or-compute. Returns a cached result (hit), or —
  /// when another caller is already computing this key — waits on its
  /// in-flight latch and returns that result as a hit. Otherwise the caller
  /// becomes the leader: exactly one miss is counted, `compute` runs
  /// without any lock held, and an `ok` result is stored for followers and
  /// future lookups. A failed leader (result not ok, or compute throws)
  /// releases the key and wakes the followers, which retry — the next one
  /// becomes leader — so failures are never served from the cache.
  CompileResult getOrCompute(const PlanKey& key, const std::function<CompileResult()>& compute);

  // ---- family tier (size-generic kernel-family plans) ------------------
  /// Returns the stored family plan when both the key and the collision
  /// digest match, else nullptr (counting a family miss). The plan is
  /// shared, immutable and safe to use from any thread. Warm hits are
  /// served from the shard's lock-free snapshot.
  std::shared_ptr<const FamilyPlan> lookupFamily(const FamilyKey& key, u64 collisionDigest);
  /// Stores a family plan (first writer wins: a family is built once and
  /// republishing an identical plan is pointless churn). Capacity-bounded
  /// with per-shard least-recently-used eviction like the result tier:
  /// hits re-touch their family, so a hot family survives insert pressure.
  void insertFamily(const FamilyKey& key, u64 collisionDigest,
                    std::shared_ptr<const FamilyPlan> plan);

  Stats stats() const;
  size_t size() const;
  /// Drops entries (both tiers) and resets counters. Coherent across
  /// shards: every shard mutex is held for the duration, so no concurrent
  /// observer sees a half-cleared cache through the mutex path.
  void clear();

  /// Process-wide cache shared by every Compiler that enables caching
  /// without supplying its own.
  static PlanCache& global();

private:
  /// Per-key latch for in-flight computations. `done` flips under the
  /// owning shard's mutex; `result` is null when the leader failed.
  struct InFlight {
    bool done = false;
    std::shared_ptr<const CompileResult> result;
  };

  /// Family-tier entry: the shared plan plus the digest guarding the
  /// 64-bit key against collisions.
  struct FamilyEntry {
    u64 digest = 0;
    std::shared_ptr<const FamilyPlan> plan;
  };

  using ResultMap = std::map<PlanKey, std::shared_ptr<const CompileResult>>;
  using FamilyMap = std::map<FamilyKey, FamilyEntry>;

  /// One independently locked slice of the cache (see file comment).
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable flightDone;
    size_t capacity = 1;  ///< this shard's slice of the entry budget
    // Authoritative state; every access under `mutex`.
    ResultMap entries;
    std::map<PlanKey, std::shared_ptr<InFlight>> inflight;
    // LRU recency order (front = coldest) with O(1) re-touch via the
    // iterator map; hits splice their key to the back.
    std::list<PlanKey> lruOrder;
    std::map<PlanKey, std::list<PlanKey>::iterator> lruPos;
    // The family tier keeps the same recency discipline: a hot family is
    // hit from the snapshot for its whole life, so without a re-touch it
    // would age toward the cold end and be evicted under insert pressure.
    FamilyMap families;
    std::list<FamilyKey> familyOrder;
    std::map<FamilyKey, std::list<FamilyKey>::iterator> familyPos;
    // Epoch-published immutable copies for the lock-free warm path;
    // republished (store-release) after every mutation under `mutex`.
    std::atomic<std::shared_ptr<const ResultMap>> snapshot;
    std::atomic<std::shared_ptr<const FamilyMap>> familySnapshot;
    // Relaxed counters. Hits flip off-lock; the rest under `mutex`.
    std::atomic<i64> hits{0};
    std::atomic<i64> misses{0};
    std::atomic<i64> evictions{0};
    std::atomic<i64> familyHits{0};
    std::atomic<i64> familyMisses{0};
    std::atomic<i64> familyEvictions{0};
  };

  Shard& shardFor(const PlanKey& key) const;
  Shard& shardForFamily(const FamilyKey& key) const;

  /// Inserts a pre-cloned snapshot and republishes; requires shard mutex.
  void insertLocked(Shard& shard, const PlanKey& key,
                    std::shared_ptr<const CompileResult> snapshot);
  /// Splices `key` to the hot end of the shard's LRU list; requires shard
  /// mutex. No-op for a key that was evicted in the meantime.
  static void touchLocked(Shard& shard, const PlanKey& key);
  /// Best-effort touch from the lock-free hit path: try_lock, skip on
  /// contention (an approximate recency order beats blocking a warm hit).
  static void touchLockFree(Shard& shard, const PlanKey& key);
  /// Family-tier analogues of the result-tier touch pair.
  static void touchFamilyLocked(Shard& shard, const FamilyKey& key);
  static void touchFamilyLockFree(Shard& shard, const FamilyKey& key);
  /// Publishes the leader's outcome, stores it when non-null, erases the
  /// in-flight entry and wakes the shard's followers.
  void finishFlight(Shard& shard, const PlanKey& key, const std::shared_ptr<InFlight>& flight,
                    std::shared_ptr<const CompileResult> snapshot);
  /// Clones `entry` into an independently owned hit result.
  static CompileResult cloneHit(const CompileResult& entry);

  size_t shardCount_ = 1;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace emm
