// PlanCache: memoized compilation results for the service layer.
//
// The benches and any service built on emm::Compiler re-compile identical
// blocks constantly (the same ME/matmul shapes with the same options). A
// PlanCache keys a finished CompileResult on the structural fingerprint of
// the source block plus the canonical hash of the option set (plus the
// skipped-pass set), and hands out deep, independently owned copies, so a
// warm compile costs one clone instead of the full pipeline.
//
// What is cached: the complete, re-emittable plan products — the rendered
// artifact, the tiled kernel / scratchpad unit IR, the data plan, the
// tile-search outcome, the diagnostics, and the per-pass timings of the
// producing run (a hit's timings describe how the plan was originally
// built; CompileResult::cacheHit tells the two apart). Only `ok` results
// are inserted. Pipelines with replaced passes are never cached (arbitrary
// code cannot be fingerprinted); Compiler::compile() skips the cache for
// them.
//
// Thread-safe: batch compilation shares one cache across pool workers.
// Capacity-bounded with insertion-order eviction.
//
// This is the first tier of a two-tier hierarchy: driver/disk_cache.h
// persists plans across processes, and Compiler::compile() resolves
// memory hit -> disk hit (promoted here) -> cold compile.
//
// Single-flight: getOrCompute() collapses concurrent misses on the same key
// to ONE pipeline run. The first caller becomes the leader and computes;
// followers block on a per-key in-flight latch and receive the leader's
// result as a cache hit, so a batch of identical kernels performs exactly
// one compile no matter how many workers race.
#pragma once

#include <condition_variable>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "driver/compiler.h"
#include "driver/family_plan.h"
#include "support/fingerprint.h"

namespace emm {

/// Cache key: (block fingerprint, options fingerprint, skipped-pass set).
struct PlanKey {
  u64 block = 0;    ///< hashProgramBlock of the source
  u64 options = 0;  ///< hashCompileOptions of the effective option set
  u64 passes = 0;   ///< digest of the sorted skipped-pass names

  auto operator<=>(const PlanKey&) const = default;
};

/// Memoizes finished CompileResults by PlanKey (see file comment).
class PlanCache {
public:
  /// Counter snapshot; stats() reads all fields under the cache mutex, so
  /// a snapshot is always coherent (never a torn mix of two updates).
  struct Stats {
    i64 hits = 0;       ///< lookups served from the cache
    i64 misses = 0;     ///< lookups that fell through (or led a compute)
    i64 entries = 0;    ///< results currently stored
    i64 evictions = 0;  ///< entries dropped by the capacity bound
    // Family tier (size-generic kernel-family plans; see family_plan.h).
    i64 familyHits = 0;       ///< family lookups served from the tier
    i64 familyMisses = 0;     ///< family lookups that fell through
    i64 familyEntries = 0;    ///< family plans currently stored
    i64 familyEvictions = 0;  ///< family plans dropped by the capacity bound
  };

  /// `capacity` = max entries before insertion-order eviction (>= 1).
  explicit PlanCache(size_t capacity = 1024);

  /// Returns an independently owned copy of the cached result with
  /// cacheHit set, or nullopt (counting a miss).
  std::optional<CompileResult> lookup(const PlanKey& key);

  /// Stores a snapshot of `result` under `key`, overwriting any previous
  /// entry and evicting the oldest entry when over capacity.
  void insert(const PlanKey& key, const CompileResult& result);

  /// Single-flight lookup-or-compute. Returns a cached result (hit), or —
  /// when another caller is already computing this key — waits on its
  /// in-flight latch and returns that result as a hit. Otherwise the caller
  /// becomes the leader: exactly one miss is counted, `compute` runs
  /// without any lock held, and an `ok` result is stored for followers and
  /// future lookups. A failed leader (result not ok, or compute throws)
  /// releases the key and wakes the followers, which retry — the next one
  /// becomes leader — so failures are never served from the cache.
  CompileResult getOrCompute(const PlanKey& key, const std::function<CompileResult()>& compute);

  // ---- family tier (size-generic kernel-family plans) ------------------
  /// Returns the stored family plan when both the key and the collision
  /// digest match, else nullptr (counting a family miss). The plan is
  /// shared, immutable and safe to use from any thread.
  std::shared_ptr<const FamilyPlan> lookupFamily(const FamilyKey& key, u64 collisionDigest);
  /// Stores a family plan (first writer wins: a family is built once and
  /// republishing an identical plan is pointless churn). Capacity-bounded
  /// with insertion-order eviction like the result tier.
  void insertFamily(const FamilyKey& key, u64 collisionDigest,
                    std::shared_ptr<const FamilyPlan> plan);

  Stats stats() const;
  size_t size() const;
  void clear();  ///< drops entries (both tiers) and resets counters

  /// Process-wide cache shared by every Compiler that enables caching
  /// without supplying its own.
  static PlanCache& global();

private:
  /// Per-key latch for in-flight computations. `done` flips under the cache
  /// mutex; `result` is null when the leader failed.
  struct InFlight {
    bool done = false;
    std::shared_ptr<const CompileResult> result;
  };

  /// Inserts a pre-cloned snapshot; requires mutex_ held.
  void insertLocked(const PlanKey& key, std::shared_ptr<const CompileResult> snapshot);
  /// Publishes the leader's outcome, stores it when non-null, erases the
  /// in-flight entry and wakes the followers.
  void finishFlight(const PlanKey& key, const std::shared_ptr<InFlight>& flight,
                    std::shared_ptr<const CompileResult> snapshot);

  /// Family-tier entry: the shared plan plus the digest guarding the
  /// 64-bit key against collisions.
  struct FamilyEntry {
    u64 digest = 0;
    std::shared_ptr<const FamilyPlan> plan;
  };

  mutable std::mutex mutex_;
  std::condition_variable flightDone_;
  size_t capacity_;
  std::map<PlanKey, std::shared_ptr<const CompileResult>> entries_;
  std::map<PlanKey, std::shared_ptr<InFlight>> inflight_;
  std::list<PlanKey> insertionOrder_;
  std::map<FamilyKey, FamilyEntry> families_;
  std::list<FamilyKey> familyOrder_;
  i64 hits_ = 0;
  i64 misses_ = 0;
  i64 evictions_ = 0;
  i64 familyHits_ = 0;
  i64 familyMisses_ = 0;
  i64 familyEvictions_ = 0;
};

}  // namespace emm
