// PlanCache: memoized compilation results for the service layer.
//
// The benches and any service built on emm::Compiler re-compile identical
// blocks constantly (the same ME/matmul shapes with the same options). A
// PlanCache keys a finished CompileResult on the structural fingerprint of
// the source block plus the canonical hash of the option set (plus the
// skipped-pass set), and hands out deep, independently owned copies, so a
// warm compile costs one clone instead of the full pipeline.
//
// What is cached: the complete, re-emittable plan products — the rendered
// artifact, the tiled kernel / scratchpad unit IR, the data plan, the
// tile-search outcome, the diagnostics, and the per-pass timings of the
// producing run (a hit's timings describe how the plan was originally
// built; CompileResult::cacheHit tells the two apart). Only `ok` results
// are inserted. Pipelines with replaced passes are never cached (arbitrary
// code cannot be fingerprinted); Compiler::compile() skips the cache for
// them.
//
// Thread-safe: batch compilation shares one cache across pool workers.
// Capacity-bounded with insertion-order eviction.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "driver/compiler.h"
#include "support/fingerprint.h"

namespace emm {

/// Cache key: (block fingerprint, options fingerprint, skipped-pass set).
struct PlanKey {
  u64 block = 0;
  u64 options = 0;
  u64 passes = 0;

  auto operator<=>(const PlanKey&) const = default;
};

class PlanCache {
public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 entries = 0;
    i64 evictions = 0;
  };

  /// `capacity` = max entries before insertion-order eviction (>= 1).
  explicit PlanCache(size_t capacity = 1024);

  /// Returns an independently owned copy of the cached result with
  /// cacheHit set, or nullopt (counting a miss).
  std::optional<CompileResult> lookup(const PlanKey& key);

  /// Stores a snapshot of `result` under `key`, overwriting any previous
  /// entry and evicting the oldest entry when over capacity.
  void insert(const PlanKey& key, const CompileResult& result);

  Stats stats() const;
  size_t size() const;
  void clear();  ///< drops entries and resets counters

  /// Process-wide cache shared by every Compiler that enables caching
  /// without supplying its own.
  static PlanCache& global();

private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::map<PlanKey, std::shared_ptr<const CompileResult>> entries_;
  std::list<PlanKey> insertionOrder_;
  i64 hits_ = 0;
  i64 misses_ = 0;
  i64 evictions_ = 0;
};

}  // namespace emm
