#include "driver/options.h"

namespace emm {

SmemOptions CompileOptions::smemOptions() const {
  SmemOptions s;
  s.delta = delta;
  s.partitionMode = partitionMode;
  s.onlyBeneficial = !stageEverything;
  s.optimizeCopySets = optimizeCopySets;
  s.sampleParams = paramValues;
  return s;
}

TileSearchOptions CompileOptions::tileSearchOptions() const {
  TileSearchOptions t;
  // Double-buffering rotates the move-in buffers, so tiles are certified
  // against half the store; the Cell emitter re-checks the doubled total.
  t.memLimitElems = (doubleBuffer ? memLimitBytes / 2 : memLimitBytes) / elementBytes;
  t.innerProcs = innerProcs;
  t.syncCost = syncCost;
  t.transferCost = transferCost;
  t.paramValues = paramValues;
  t.candidates = tileCandidates;
  t.hoistCopies = hoistCopies;
  t.parametric = parametricTileAnalysis;
  return t;
}

CudaEmitOptions CompileOptions::cudaEmitOptions() const {
  CudaEmitOptions c;
  c.paramValues = paramValues;
  c.numBoundParams = numBoundParams;
  c.kernelName = kernelName;
  c.elementType = elementType;
  c.symbolicSizes = runtimeSizeArgs;
  return c;
}

CellEmitOptions CompileOptions::cellEmitOptions() const {
  CellEmitOptions c;
  c.paramValues = paramValues;
  c.numBoundParams = numBoundParams;
  c.kernelName = kernelName;
  c.elementType = elementType;
  c.doubleBuffer = doubleBuffer;
  c.localStoreBudgetBytes = memLimitBytes;
  c.elementBytes = elementBytes;
  c.symbolicSizes = runtimeSizeArgs;
  return c;
}

}  // namespace emm
