// Backend abstraction: renders a compiled CodeUnit as target source.
//
// The paper evaluates two architecture classes — GPU-like (CUDA) and
// Cell-like (explicit local stores). Code generation is therefore a
// pluggable Backend looked up by name in a registry, rather than direct
// calls to emitC/emitCuda: the driver's codegen pass resolves
// CompileOptions::backendName at compile time, and new targets (a Cell
// backend is sketched in bench/ext_cell_target.cpp) register without
// touching the pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/artifact_info.h"
#include "driver/options.h"
#include "ir/ast.h"

namespace emm {

struct BufferLayout;

class Backend {
public:
  explicit Backend(std::string name) : name_(std::move(name)) {}
  virtual ~Backend() = default;
  const std::string& name() const { return name_; }
  /// Renders the unit as target source text.
  virtual std::string emit(const CodeUnit& unit, const CompileOptions& options) const = 0;

  /// Size-generic emission entry point: `layout` carries the packed-arena
  /// geometry formulas, `info` (optional) receives the artifact's bind
  /// slots, guards and size-generic verdict. The default forwards to the
  /// two-argument form and reports the artifact as size-baked, so external
  /// backends keep working unchanged (their families simply stay on the
  /// bind-and-emit warm path).
  virtual std::string emit(const CodeUnit& unit, const CompileOptions& options,
                           const BufferLayout* layout, ArtifactInfo* info) const {
    (void)layout;
    if (info != nullptr) {
      info->sizeGeneric = false;
      info->note = "backend '" + name_ + "' has no size-generic emission";
    }
    return emit(unit, options);
  }

private:
  std::string name_;
};

/// Process-wide count of built-in emitter invocations (c/cuda/cell). The
/// fig4/fig5 sweeps and bench/svc_family_bind assert on deltas of this
/// counter: a warmed family must serve every further size with ZERO new
/// emissions.
std::uint64_t emitterInvocations();

/// Name -> Backend lookup. global() is pre-seeded with the "c" and "cuda"
/// backends; additional targets register at startup or from user code.
class BackendRegistry {
public:
  /// Registers a backend under its name. Throws ApiError on duplicates.
  void add(std::unique_ptr<Backend> backend);
  /// Returns the backend, or nullptr when the name is unknown.
  const Backend* lookup(const std::string& name) const;
  std::vector<std::string> names() const;

  static BackendRegistry& global();

private:
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace emm
