// CompileOptions: every knob of the pipeline in one struct.
//
// Consolidates the per-stage option structs (SmemOptions, TileSearchOptions,
// CudaEmitOptions) plus the tiling configuration that tools/examples used to
// assemble by hand. The per-stage structs remain the stage-local interfaces;
// the conversion methods below derive them, so a caller sets each fact
// (problem sizes, memory limit, ...) exactly once.
#pragma once

#include <string>
#include <vector>

#include "codegen/emit_cell.h"
#include "codegen/emit_cuda.h"
#include "smem/data_manage.h"
#include "tilesearch/tilesearch.h"

namespace emm {

/// Pipeline shape selection.
enum class PipelineMode {
  /// Full flow: deps -> transform -> tilesearch -> tiling -> smem -> codegen.
  /// Falls back to block-level scratchpad analysis when the band needs
  /// inter-block synchronization (the paper's Jacobi case).
  Auto,
  /// Section-3 only: scratchpad planning + data-movement codegen on the
  /// block as written, no transformation or tiling (the Figure-1 flow).
  ScratchpadOnly,
};

/// Tile-size search solver selection (Section 4.3).
enum class TileSearchMode {
  CoordinateDescent,  ///< geometric seeding + projected descent (default)
  Exhaustive,         ///< full candidate-grid oracle (ablation/tests)
};

struct CompileOptions {
  // ---- problem binding ----
  /// Concrete values of the block's parameters (problem sizes). Used for
  /// Algorithm-1 volume sampling, tile-size search, and CUDA extent folding.
  IntVec paramValues;

  // ---- pipeline shape ----
  PipelineMode mode = PipelineMode::Auto;

  // ---- scratchpad framework (Section 3) ----
  double delta = 0.30;  ///< Algorithm-1 constant-reuse threshold
  PartitionMode partitionMode = PartitionMode::MaximalDisjoint;
  /// Cell-style targets must stage every reference through the local store;
  /// GPU-style targets may leave low-reuse data in global memory (false).
  bool stageEverything = false;
  bool optimizeCopySets = false;  ///< Section 3.1.4 live-in reduction

  // ---- tiling (Section 4) ----
  /// Sub-tile sizes per common loop. Empty: run the tile-size search.
  std::vector<i64> subTile;
  /// Block-tile sizes per space loop. Empty: 2x the space loop's sub-tile.
  std::vector<i64> blockTile;
  /// Thread-tile sizes per space loop. Empty: all 1.
  std::vector<i64> threadTile;
  bool hoistCopies = true;   ///< Section 4.2 copy placement
  bool useScratchpad = true; ///< false: the paper's "GPU w/o smem" baseline

  // ---- tile-size search (Section 4.3) ----
  TileSearchMode searchMode = TileSearchMode::CoordinateDescent;
  i64 memLimitBytes = 16 * 1024;  ///< scratchpad capacity (Mup)
  i64 elementBytes = 4;           ///< bytes per element (paper: float)
  i64 innerProcs = 32;            ///< P, inner-level processes
  double syncCost = 32;           ///< S, cycles per process per barrier
  double transferCost = 4;        ///< L, cycles per element
  /// Candidate tile sizes per loop; empty = geometric ladder.
  std::vector<std::vector<i64>> tileCandidates;
  /// Build the Section-3 cost model once with tile sizes symbolic and
  /// evaluate candidates as pure expression evaluation (falls back to the
  /// concrete per-candidate analysis, with a diagnostic, when the block is
  /// not parametrically analyzable).
  bool parametricTileAnalysis = true;

  // ---- scratchpad layout (bank-conflict-aware packing) ----
  /// Pack local buffers into a banked layout: bank-aligned base offsets and
  /// innermost-dimension padding chosen so the padded row pitch is coprime
  /// with the bank count (unit- and tile-strided warp accesses then hit
  /// distinct banks). Padding never changes semantics, only allocation.
  bool packBuffers = true;
  /// Bank descriptor of the target scratchpad (gpusim::Machine mirrors
  /// these). banks <= 1 disables conflict padding; packing still assigns
  /// offsets.
  i64 smemBanks = 16;
  i64 smemBankWidthBytes = 4;

  // ---- codegen ----
  std::string backendName = "c";  ///< registered Backend to render with
  std::string kernelName = "emmap_kernel";
  std::string elementType = "float";
  /// Leading parameters bound at emission (CUDA extent folding);
  /// -1: all of paramValues (tile origins are never part of paramValues).
  int numBoundParams = -1;
  /// Cell backend: emit the tag-rotated double-buffered DMA pipeline
  /// (prologue / steady-state prefetch / epilogue drain). The tile search
  /// and layout planner then certify tiles against HALF the scratchpad
  /// budget, so the rotated (doubled) move-in buffers fit the full store;
  /// the emitter re-checks the doubled footprint and falls back to the
  /// synchronous schedule (with a diagnostic comment) when it still does
  /// not fit.
  bool doubleBuffer = false;
  /// Size-generic emission (runtime-size-bound codegen): problem sizes and
  /// global-array strides stay runtime kernel arguments, buffer geometry is
  /// folded in as guarded closed-form expressions, and a warmed family
  /// serves every in-envelope size from ONE cached artifact via
  /// RuntimeBinder — no re-emission. Off reproduces the historical
  /// size-baked artifacts (and the bind-and-emit warm path).
  bool runtimeSizeArgs = true;

  // ---- derived per-stage views ----
  SmemOptions smemOptions() const;
  TileSearchOptions tileSearchOptions() const;
  CudaEmitOptions cudaEmitOptions() const;
  CellEmitOptions cellEmitOptions() const;
};

}  // namespace emm
