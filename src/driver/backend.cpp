#include "driver/backend.h"

#include "codegen/emit_cell.h"
#include "codegen/emit_cuda.h"
#include "ir/emit.h"
#include "support/diagnostics.h"

namespace emm {

namespace {

/// Plain C rendering (ir/emit.h): the inspection/verification target every
/// example prints and the interpreter-backed tests read.
class CBackend : public Backend {
public:
  CBackend() : Backend("c") {}
  std::string emit(const CodeUnit& unit, const CompileOptions&) const override {
    return emitC(unit);
  }
};

/// CUDA source rendering (codegen/emit_cuda.h): the artifact the paper's
/// toolchain fed to nvcc.
class CudaBackend : public Backend {
public:
  CudaBackend() : Backend("cuda") {}
  std::string emit(const CodeUnit& unit, const CompileOptions& options) const override {
    return emitCuda(unit, options.cudaEmitOptions());
  }
};

/// Cell-like target (codegen/emit_cell.h): DMA-style staged copies against
/// the SPE local store. Selecting it forces stageEverything in the driver.
class CellBackend : public Backend {
public:
  CellBackend() : Backend("cell") {}
  std::string emit(const CodeUnit& unit, const CompileOptions& options) const override {
    return emitCell(unit, options.cellEmitOptions());
  }
};

}  // namespace

void BackendRegistry::add(std::unique_ptr<Backend> backend) {
  EMM_REQUIRE(backend != nullptr, "null backend");
  EMM_REQUIRE(lookup(backend->name()) == nullptr,
              "backend '" + backend->name() + "' already registered");
  backends_.push_back(std::move(backend));
}

const Backend* BackendRegistry::lookup(const std::string& name) const {
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry;
    r->add(std::make_unique<CBackend>());
    r->add(std::make_unique<CudaBackend>());
    r->add(std::make_unique<CellBackend>());
    return r;
  }();
  return *reg;
}

}  // namespace emm
