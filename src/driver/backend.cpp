#include "driver/backend.h"

#include <atomic>

#include "codegen/emit_cell.h"
#include "codegen/emit_cuda.h"
#include "ir/emit.h"
#include "support/diagnostics.h"

namespace emm {

namespace {

/// Relaxed is enough: the benches read deltas after joining all work.
std::atomic<std::uint64_t> g_emitterInvocations{0};

void countEmit() { g_emitterInvocations.fetch_add(1, std::memory_order_relaxed); }

/// Plain C rendering (ir/emit.h): the inspection/verification target every
/// example prints and the interpreter-backed tests read. The text is
/// already size-generic — sizes appear as named parameters, local extents
/// print their closed-form bound expressions — so the only runtime slots
/// are the size parameters themselves.
class CBackend : public Backend {
public:
  CBackend() : Backend("c") {}
  std::string emit(const CodeUnit& unit, const CompileOptions& options) const override {
    return emit(unit, options, nullptr, nullptr);
  }
  std::string emit(const CodeUnit& unit, const CompileOptions& options,
                   const BufferLayout* layout, ArtifactInfo* info) const override {
    (void)layout;
    countEmit();
    if (info != nullptr) {
      info->sizeGeneric = options.runtimeSizeArgs;
      if (options.runtimeSizeArgs && unit.source != nullptr) {
        int bound = options.numBoundParams < 0 ? static_cast<int>(options.paramValues.size())
                                               : options.numBoundParams;
        for (int j = 0; j < bound; ++j) {
          BindSlot s;
          s.name = unit.source->paramNames[j];
          s.kind = BindSlot::Kind::SizeParam;
          s.a = j;
          info->slots.push_back(std::move(s));
        }
      }
    }
    return emitC(unit);
  }
};

/// CUDA source rendering (codegen/emit_cuda.h): the artifact the paper's
/// toolchain fed to nvcc.
class CudaBackend : public Backend {
public:
  CudaBackend() : Backend("cuda") {}
  std::string emit(const CodeUnit& unit, const CompileOptions& options) const override {
    return emit(unit, options, nullptr, nullptr);
  }
  std::string emit(const CodeUnit& unit, const CompileOptions& options,
                   const BufferLayout* layout, ArtifactInfo* info) const override {
    countEmit();
    return emitCuda(unit, options.cudaEmitOptions(), layout, info);
  }
};

/// Cell-like target (codegen/emit_cell.h): DMA-style staged copies against
/// the SPE local store. Selecting it forces stageEverything in the driver.
class CellBackend : public Backend {
public:
  CellBackend() : Backend("cell") {}
  std::string emit(const CodeUnit& unit, const CompileOptions& options) const override {
    return emit(unit, options, nullptr, nullptr);
  }
  std::string emit(const CodeUnit& unit, const CompileOptions& options,
                   const BufferLayout* layout, ArtifactInfo* info) const override {
    (void)layout;
    countEmit();
    return emitCell(unit, options.cellEmitOptions(), info);
  }
};

}  // namespace

std::uint64_t emitterInvocations() { return g_emitterInvocations.load(std::memory_order_relaxed); }

void BackendRegistry::add(std::unique_ptr<Backend> backend) {
  EMM_REQUIRE(backend != nullptr, "null backend");
  EMM_REQUIRE(lookup(backend->name()) == nullptr,
              "backend '" + backend->name() + "' already registered");
  backends_.push_back(std::move(backend));
}

const Backend* BackendRegistry::lookup(const std::string& name) const {
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  return nullptr;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry;
    r->add(std::make_unique<CBackend>());
    r->add(std::make_unique<CudaBackend>());
    r->add(std::make_unique<CellBackend>());
    return r;
  }();
  return *reg;
}

}  // namespace emm
