#include "driver/compiler.h"

#include <algorithm>
#include <chrono>

#include "driver/disk_cache.h"
#include "driver/family_plan.h"
#include "driver/plan_cache.h"
#include "driver/runtime_binder.h"
#include "support/serialize.h"
#include "support/diagnostics.h"
#include "support/fingerprint.h"
#include "support/thread_pool.h"

namespace emm {

std::string CompileResult::firstError() const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) return d.message;
  return "";
}

const PassTiming* CompileResult::timing(const std::string& pass) const {
  for (const PassTiming& t : timings)
    if (t.pass == pass) return &t;
  return nullptr;
}

CompileResult CompileResult::clone() const {
  CompileResult out;
  static_cast<PipelineProducts&>(out) = PipelineProducts::clone();
  out.ok = ok;
  out.cacheHit = cacheHit;
  out.diskHit = diskHit;
  out.familyHit = familyHit;
  out.artifactBound = artifactBound;
  out.boundArgs = boundArgs;
  out.diagnostics = diagnostics;
  out.timings = timings;
  return out;
}

Compiler& Compiler::source(ProgramBlock block) {
  block.validate();
  source_ = std::move(block);
  return *this;
}

Compiler& Compiler::options(CompileOptions o) {
  options_ = std::move(o);
  return *this;
}

Compiler& Compiler::parameters(IntVec values) {
  options_.paramValues = std::move(values);
  return *this;
}

Compiler& Compiler::tileSizes(std::vector<i64> subTile) {
  options_.subTile = std::move(subTile);
  return *this;
}

Compiler& Compiler::blockTileSizes(std::vector<i64> blockTile) {
  options_.blockTile = std::move(blockTile);
  return *this;
}

Compiler& Compiler::threadTileSizes(std::vector<i64> threadTile) {
  options_.threadTile = std::move(threadTile);
  return *this;
}

Compiler& Compiler::tileCandidates(std::vector<std::vector<i64>> candidates) {
  options_.tileCandidates = std::move(candidates);
  return *this;
}

Compiler& Compiler::memoryLimitBytes(i64 bytes) {
  options_.memLimitBytes = bytes;
  return *this;
}

Compiler& Compiler::innerProcs(i64 procs) {
  options_.innerProcs = procs;
  return *this;
}

Compiler& Compiler::hoistCopies(bool on) {
  options_.hoistCopies = on;
  return *this;
}

Compiler& Compiler::useScratchpad(bool on) {
  options_.useScratchpad = on;
  return *this;
}

Compiler& Compiler::stageEverything(bool on) {
  options_.stageEverything = on;
  return *this;
}

Compiler& Compiler::partition(PartitionMode mode) {
  options_.partitionMode = mode;
  return *this;
}

Compiler& Compiler::delta(double d) {
  options_.delta = d;
  return *this;
}

Compiler& Compiler::scratchpadOnly(bool on) {
  options_.mode = on ? PipelineMode::ScratchpadOnly : PipelineMode::Auto;
  return *this;
}

Compiler& Compiler::exhaustiveSearch(bool on) {
  options_.searchMode = on ? TileSearchMode::Exhaustive : TileSearchMode::CoordinateDescent;
  return *this;
}

Compiler& Compiler::backend(std::string name) {
  options_.backendName = std::move(name);
  return *this;
}

Compiler& Compiler::kernelName(std::string name) {
  options_.kernelName = std::move(name);
  return *this;
}

Compiler& Compiler::cache(PlanCache* cache) {
  cache_ = cache;
  return *this;
}

Compiler& Compiler::diskCache(DiskPlanCache* cache) {
  diskCache_ = cache;
  ownedDiskCache_.reset();
  return *this;
}

Compiler& Compiler::diskCache(const std::string& dir) {
  ownedDiskCache_ = std::make_shared<DiskPlanCache>(dir);
  diskCache_ = nullptr;
  return *this;
}

DiskPlanCache* Compiler::diskPlanCache() const {
  return diskCache_ != nullptr ? diskCache_ : ownedDiskCache_.get();
}

Compiler& Compiler::jobs(int n) {
  EMM_REQUIRE(n >= 0, "jobs() takes a non-negative worker count");
  if (n != jobs_) pool_.reset();  // recreated lazily at the new size
  jobs_ = n;
  return *this;
}

Compiler& Compiler::skipPass(const std::string& name) {
  EMM_REQUIRE(PassRegistry::standard().contains(name), "unknown pass '" + name + "'");
  if (std::find(skipped_.begin(), skipped_.end(), name) == skipped_.end())
    skipped_.push_back(name);
  return *this;
}

Compiler& Compiler::replacePass(const std::string& name, std::shared_ptr<Pass> pass) {
  EMM_REQUIRE(PassRegistry::standard().contains(name), "unknown pass '" + name + "'");
  EMM_REQUIRE(pass != nullptr, "null replacement for pass '" + name + "'");
  replacements_[name] = std::move(pass);
  return *this;
}

std::vector<std::string> Compiler::passNames() const {
  return PassRegistry::standard().order();
}

CompileResult Compiler::compile(ProgramBlock block) {
  source(std::move(block));
  return compile();
}

CompileOptions Compiler::effectiveOptions() const {
  CompileOptions o = options_;
  // Cell-style targets cannot touch global memory during compute (Section 3):
  // selecting the cell backend forces every reference through the local
  // store, exactly as setting stageEverything by hand would.
  if (o.backendName == "cell") o.stageEverything = true;
  return o;
}

namespace {

u64 skippedPassDigest(std::vector<std::string> skipped) {
  std::sort(skipped.begin(), skipped.end());
  Hasher h;
  h.mix(skipped);
  return h.digest();
}

PlanKey planKeyFor(const ProgramBlock& block, const CompileOptions& options,
                   const std::vector<std::string>& skipped) {
  PlanKey key;
  key.block = hashProgramBlock(block);
  key.options = hashCompileOptions(options);
  key.passes = skippedPassDigest(skipped);
  return key;
}

/// Skipped-pass digest for the family key. Codegen consumes pipeline
/// products and contributes nothing to the family plan, so skipping it
/// must not split the family: a cache warmed by full compiles serves
/// --emit=plan/stats sweeps and vice versa.
u64 familyPassesDigest(const std::vector<std::string>& skipped) {
  std::vector<std::string> relevant;
  for (const std::string& name : skipped)
    if (name != "codegen") relevant.push_back(name);
  return skippedPassDigest(relevant);
}

}  // namespace

CompileResult Compiler::compile() {
  EMM_REQUIRE(source_.has_value(), "Compiler::compile() called without a source block");
  // Replaced passes run arbitrary code that a fingerprint cannot witness;
  // those pipelines always run and are never stored in either tier.
  if ((cache_ != nullptr || diskPlanCache() != nullptr) && replacements_.empty()) {
    PlanKey key = planKeyFor(*source_, effectiveOptions(), skipped_);
    // Single-flight: concurrent misses on the same key collapse to one
    // compute (disk lookup or pipeline run); followers receive the
    // leader's result as a cache hit. A disk hit returned by the leader is
    // an ok result, so getOrCompute promotes it into the memory tier. The
    // cache is sharded by key fingerprint with a lock-free snapshot warm
    // path, so concurrent compiles of DIFFERENT keys never serialize here
    // — the single-flight latch is per key on the key's own shard.
    if (cache_ != nullptr)
      return cache_->getOrCompute(key, [this, &key] { return computeWithDiskTier(key); });
    return computeWithDiskTier(key);
  }
  return runPipeline();
}

CompileResult Compiler::computeWithDiskTier(const PlanKey& key) {
  DiskPlanCache* disk = diskPlanCache();
  const CompileOptions opts = effectiveOptions();
  if (disk != nullptr && source_.has_value()) {
    if (std::optional<CompileResult> hit = disk->lookup(key, *source_, opts))
      return std::move(*hit);
  }
  // Family tier: one size-generic plan per kernel family (same block and
  // options modulo the problem sizes). Canonical forms, keys and digests
  // are computed ONCE, up front — runPipeline() may consume source_ on
  // one-shot async snapshots, so nothing below may touch it afterwards.
  const ProgramBlock famBlock = familyCanonicalBlock(*source_);
  const CompileOptions famOptions = familyCanonicalOptions(opts);
  FamilyKey fkey;
  fkey.block = hashProgramBlock(famBlock);
  fkey.options = hashCompileOptions(famOptions);
  fkey.passes = familyPassesDigest(skipped_);
  const u64 famBlockDigest = digestBytes(serializeProgramBlock(famBlock));
  const u64 famOptionsDigest = digestBytes(serializeCompileOptions(famOptions));
  const u64 fdigest = hashCombine(famBlockDigest, famOptionsDigest);
  std::shared_ptr<const FamilyPlan> family;
  if (cache_ != nullptr) family = cache_->lookupFamily(fkey, fdigest);
  if (family == nullptr && disk != nullptr) {
    family = disk->lookupFamily(fkey, famBlockDigest, famOptionsDigest);
    if (family != nullptr && cache_ != nullptr) cache_->insertFamily(fkey, fdigest, family);
  }
  // Binder fast path: a size-generic family record serves this size with
  // no pipeline run and no emission. The per-size disk entry is skipped on
  // purpose — the family record already covers every in-envelope size, so
  // writing one .emmplan per size would just duplicate it. The family key
  // deliberately ignores a skipped codegen pass, so an artifact-less
  // request must not be answered with the record's artifact.
  const bool codegenSkipped =
      std::find(skipped_.begin(), skipped_.end(), "codegen") != skipped_.end();
  std::vector<Diagnostic> bindDiags;
  if (family != nullptr && family->haveRecord && source_.has_value() && !codegenSkipped) {
    if (std::optional<CompileResult> bound =
            bindFamilyArtifact(*family, *source_, opts, &bindDiags))
      return std::move(*bound);
  }
  std::shared_ptr<FamilyPlan> produced;
  CompileResult result = runPipeline(family, &produced);
  // Surface why the binder fell back ahead of the pipeline's diagnostics.
  if (!bindDiags.empty())
    result.diagnostics.insert(result.diagnostics.begin(), bindDiags.begin(), bindDiags.end());
  if (result.ok) {
    // Publish the family products of a cold run before the per-size entry,
    // so a racing sweep member sees the family as soon as the plan exists.
    if (produced != nullptr) {
      attachFamilyRecord(*produced, result, opts);
      if (cache_ != nullptr) cache_->insertFamily(fkey, fdigest, produced);
      if (disk != nullptr) disk->insertFamily(fkey, famBlockDigest, famOptionsDigest, produced);
    }
    // The disk tier never fails a compile: a full or read-only cache
    // directory silently degrades to cold compiles.
    if (disk != nullptr) disk->insert(key, opts, result);
  }
  return result;
}

std::optional<CompileResult> Compiler::tryBindFamily(const ProgramBlock& block) {
  if (cache_ == nullptr || !replacements_.empty()) return std::nullopt;
  if (std::find(skipped_.begin(), skipped_.end(), "codegen") != skipped_.end())
    return std::nullopt;
  const CompileOptions opts = effectiveOptions();
  const ProgramBlock famBlock = familyCanonicalBlock(block);
  const CompileOptions famOptions = familyCanonicalOptions(opts);
  FamilyKey fkey;
  fkey.block = hashProgramBlock(famBlock);
  fkey.options = hashCompileOptions(famOptions);
  fkey.passes = familyPassesDigest(skipped_);
  const u64 fdigest = hashCombine(digestBytes(serializeProgramBlock(famBlock)),
                                  digestBytes(serializeCompileOptions(famOptions)));
  std::shared_ptr<const FamilyPlan> family = cache_->lookupFamily(fkey, fdigest);
  if (family == nullptr || !family->haveRecord) return std::nullopt;
  return bindFamilyArtifact(*family, block, opts, nullptr);
}

CompileResult Compiler::runPipeline(std::shared_ptr<const FamilyPlan> familyIn,
                                    std::shared_ptr<FamilyPlan>* familyOut) {
  const PassRegistry& registry = PassRegistry::standard();

  CompileState state;
  state.options = effectiveOptions();
  state.familyIn = std::move(familyIn);
  if (state.familyIn == nullptr && familyOut != nullptr)
    state.familyOut = std::make_shared<FamilyPlan>();
  // Keep Compiler reusable by copying the source — except for one-shot
  // async snapshots, which own their source exclusively and may donate it.
  state.input = consumeSource_ ? std::make_unique<ProgramBlock>(std::move(*source_))
                               : std::make_unique<ProgramBlock>(*source_);
  if (consumeSource_) source_.reset();
  std::vector<PassTiming> timings;

  for (const std::string& passName : registry.order()) {
    PassTiming timing;
    timing.pass = passName;
    if (std::find(skipped_.begin(), skipped_.end(), passName) != skipped_.end()) {
      timing.skipped = true;
      state.note(passName, "skipped by request");
      // Record the entry and continue with the next pass.
      // (Timing stays 0; ran stays false.)
      timings.push_back(timing);
      continue;
    }
    auto it = replacements_.find(passName);
    PassPtr ownedPass;
    Pass* pass = nullptr;
    if (it != replacements_.end()) {
      pass = it->second.get();
    } else {
      ownedPass = registry.create(passName);
      pass = ownedPass.get();
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      pass->run(state);
    } catch (const ApiError& e) {
      state.error(passName, e.what());
    }
    const auto end = std::chrono::steady_clock::now();
    timing.ran = true;
    timing.millis = std::chrono::duration<double, std::milli>(end - start).count();
    timings.push_back(timing);
    // Surface any sub-stage timings the pass recorded (e.g. the tilesearch
    // pass splits plan construction from candidate evaluation).
    for (auto& [sub, millis] : state.subTimings) {
      PassTiming st;
      st.pass = sub;
      st.millis = millis;
      st.ran = true;
      timings.push_back(std::move(st));
    }
    state.subTimings.clear();
    if (state.failed) break;
  }

  CompileResult result;
  result.ok = !state.failed;
  result.familyHit = state.familyUsed;
  if (familyOut != nullptr) *familyOut = std::move(state.familyOut);
  result.diagnostics = std::move(state.diagnostics);
  result.timings = std::move(timings);
  static_cast<PipelineProducts&>(result) = std::move(static_cast<PipelineProducts&>(state));
  return result;
}

void Compiler::ensurePool() {
  if (pool_ == nullptr)
    pool_ = std::make_shared<ThreadPool>(jobs_ > 0 ? jobs_ : ThreadPool::defaultConcurrency());
}

std::future<CompileResult> Compiler::compileAsync() {
  EMM_REQUIRE(source_.has_value(), "Compiler::compileAsync() called without a source block");
  ensurePool();
  // The task compiles a snapshot of the current configuration, so later
  // builder mutations don't race. The snapshot must not share the pool:
  // a worker releasing the last pool reference would join itself. Since the
  // snapshot is single-use, its pipeline run may consume the source block
  // in place instead of copying it again.
  auto snapshot = std::make_shared<Compiler>(*this);
  snapshot->pool_.reset();
  snapshot->consumeSource_ = true;
  auto promise = std::make_shared<std::promise<CompileResult>>();
  std::future<CompileResult> future = promise->get_future();
  pool_->submit([snapshot, promise] {
    try {
      promise->set_value(snapshot->compile());
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

std::future<CompileResult> Compiler::compileAsync(ProgramBlock block) {
  source(std::move(block));
  return compileAsync();
}

std::vector<CompileResult> Compiler::compileBatch(std::vector<ProgramBlock> blocks) {
  ensurePool();
  std::vector<std::future<CompileResult>> futures(blocks.size());
  // Family-aware scheduling: group the batch by family key, compile ONE
  // leader per family first, and fan the remaining members out as
  // bind-and-emit followers only once the leader's family plan has landed
  // in the cache. Without that ordering a sweep over N sizes of one kernel
  // races N cold pipelines before any of them publishes the family plan.
  // Without a cache there is no published plan to reuse (and replaced
  // passes bypass the tiers), so fall back to plain fan-out.
  const bool familyAware = (cache_ != nullptr || diskPlanCache() != nullptr) &&
                           replacements_.empty() && blocks.size() > 1;
  if (!familyAware) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      source(std::move(blocks[i]));
      futures[i] = compileAsync();
    }
  } else {
    const CompileOptions famOptions = familyCanonicalOptions(effectiveOptions());
    const u64 famTail =
        hashCombine(hashCompileOptions(famOptions), familyPassesDigest(skipped_));
    // Group before any block is moved; input order is preserved within a
    // family, so the leader is always the first-listed member.
    std::map<u64, std::vector<size_t>> families;
    for (size_t i = 0; i < blocks.size(); ++i)
      families[hashCombine(hashProgramBlock(familyCanonicalBlock(blocks[i])), famTail)]
          .push_back(i);
    // One gate per family, released when its leader's compile returns.
    // Submission order — every leader, then every follower — plus the
    // pool's FIFO dispatch guarantees each leader is dequeued before any
    // follower, so a follower blocking on its gate can never occupy the
    // worker its own leader still needs (no deadlock at any pool width).
    struct Follower {
      size_t index;
      std::shared_ptr<Compiler> snapshot;
      std::shared_future<void> gate;
    };
    std::vector<Follower> followers;
    for (auto& [key, members] : families) {
      auto gatePromise = std::make_shared<std::promise<void>>();
      std::shared_future<void> gate = gatePromise->get_future().share();
      for (size_t m = 0; m < members.size(); ++m) {
        const size_t index = members[m];
        source(std::move(blocks[index]));
        auto snapshot = std::make_shared<Compiler>(*this);
        snapshot->pool_.reset();
        snapshot->consumeSource_ = true;
        if (m == 0) {
          auto promise = std::make_shared<std::promise<CompileResult>>();
          futures[index] = promise->get_future();
          pool_->submit([snapshot, promise, gatePromise] {
            try {
              promise->set_value(snapshot->compile());
            } catch (...) {
              promise->set_exception(std::current_exception());
            }
            // Released on failure too: followers then compile cold rather
            // than wait forever.
            gatePromise->set_value();
          });
        } else {
          followers.push_back({index, std::move(snapshot), gate});
        }
      }
    }
    for (Follower& f : followers) {
      auto promise = std::make_shared<std::promise<CompileResult>>();
      futures[f.index] = promise->get_future();
      pool_->submit([snapshot = std::move(f.snapshot), promise, gate = f.gate] {
        gate.wait();
        try {
          promise->set_value(snapshot->compile());
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
      });
    }
  }
  source_.reset();  // the batch consumed the blocks; leave the builder clean
  std::vector<CompileResult> results;
  results.reserve(futures.size());
  for (std::future<CompileResult>& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace emm
