#include "driver/compiler.h"

#include <algorithm>
#include <chrono>

#include "support/diagnostics.h"

namespace emm {

std::string CompileResult::firstError() const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) return d.message;
  return "";
}

const PassTiming* CompileResult::timing(const std::string& pass) const {
  for (const PassTiming& t : timings)
    if (t.pass == pass) return &t;
  return nullptr;
}

Compiler& Compiler::source(ProgramBlock block) {
  block.validate();
  source_ = std::move(block);
  return *this;
}

Compiler& Compiler::options(CompileOptions o) {
  options_ = std::move(o);
  return *this;
}

Compiler& Compiler::parameters(IntVec values) {
  options_.paramValues = std::move(values);
  return *this;
}

Compiler& Compiler::tileSizes(std::vector<i64> subTile) {
  options_.subTile = std::move(subTile);
  return *this;
}

Compiler& Compiler::blockTileSizes(std::vector<i64> blockTile) {
  options_.blockTile = std::move(blockTile);
  return *this;
}

Compiler& Compiler::threadTileSizes(std::vector<i64> threadTile) {
  options_.threadTile = std::move(threadTile);
  return *this;
}

Compiler& Compiler::tileCandidates(std::vector<std::vector<i64>> candidates) {
  options_.tileCandidates = std::move(candidates);
  return *this;
}

Compiler& Compiler::memoryLimitBytes(i64 bytes) {
  options_.memLimitBytes = bytes;
  return *this;
}

Compiler& Compiler::innerProcs(i64 procs) {
  options_.innerProcs = procs;
  return *this;
}

Compiler& Compiler::hoistCopies(bool on) {
  options_.hoistCopies = on;
  return *this;
}

Compiler& Compiler::useScratchpad(bool on) {
  options_.useScratchpad = on;
  return *this;
}

Compiler& Compiler::stageEverything(bool on) {
  options_.stageEverything = on;
  return *this;
}

Compiler& Compiler::partition(PartitionMode mode) {
  options_.partitionMode = mode;
  return *this;
}

Compiler& Compiler::delta(double d) {
  options_.delta = d;
  return *this;
}

Compiler& Compiler::scratchpadOnly(bool on) {
  options_.mode = on ? PipelineMode::ScratchpadOnly : PipelineMode::Auto;
  return *this;
}

Compiler& Compiler::exhaustiveSearch(bool on) {
  options_.searchMode = on ? TileSearchMode::Exhaustive : TileSearchMode::CoordinateDescent;
  return *this;
}

Compiler& Compiler::backend(std::string name) {
  options_.backendName = std::move(name);
  return *this;
}

Compiler& Compiler::kernelName(std::string name) {
  options_.kernelName = std::move(name);
  return *this;
}

Compiler& Compiler::skipPass(const std::string& name) {
  EMM_REQUIRE(PassRegistry::standard().contains(name), "unknown pass '" + name + "'");
  if (std::find(skipped_.begin(), skipped_.end(), name) == skipped_.end())
    skipped_.push_back(name);
  return *this;
}

Compiler& Compiler::replacePass(const std::string& name, std::shared_ptr<Pass> pass) {
  EMM_REQUIRE(PassRegistry::standard().contains(name), "unknown pass '" + name + "'");
  EMM_REQUIRE(pass != nullptr, "null replacement for pass '" + name + "'");
  replacements_[name] = std::move(pass);
  return *this;
}

std::vector<std::string> Compiler::passNames() const {
  return PassRegistry::standard().order();
}

CompileResult Compiler::compile(ProgramBlock block) {
  source(std::move(block));
  return compile();
}

CompileResult Compiler::compile() {
  EMM_REQUIRE(source_.has_value(), "Compiler::compile() called without a source block");
  const PassRegistry& registry = PassRegistry::standard();

  CompileState state;
  state.options = options_;
  state.input = std::make_unique<ProgramBlock>(*source_);  // keep Compiler reusable
  std::vector<PassTiming> timings;

  for (const std::string& passName : registry.order()) {
    PassTiming timing;
    timing.pass = passName;
    if (std::find(skipped_.begin(), skipped_.end(), passName) != skipped_.end()) {
      timing.skipped = true;
      state.note(passName, "skipped by request");
      // Record the entry and continue with the next pass.
      // (Timing stays 0; ran stays false.)
      timings.push_back(timing);
      continue;
    }
    auto it = replacements_.find(passName);
    PassPtr ownedPass;
    Pass* pass = nullptr;
    if (it != replacements_.end()) {
      pass = it->second.get();
    } else {
      ownedPass = registry.create(passName);
      pass = ownedPass.get();
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      pass->run(state);
    } catch (const ApiError& e) {
      state.error(passName, e.what());
    }
    const auto end = std::chrono::steady_clock::now();
    timing.ran = true;
    timing.millis = std::chrono::duration<double, std::milli>(end - start).count();
    timings.push_back(timing);
    if (state.failed) break;
  }

  CompileResult result;
  result.ok = !state.failed;
  result.diagnostics = std::move(state.diagnostics);
  result.timings = std::move(timings);
  static_cast<PipelineProducts&>(result) = std::move(static_cast<PipelineProducts&>(state));
  return result;
}

}  // namespace emm
