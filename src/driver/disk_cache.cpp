#include "driver/disk_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "driver/family_plan.h"
#include "support/diagnostics.h"
#include "support/serialize.h"

namespace fs = std::filesystem;

namespace emm {

namespace {

// 8-byte magic opening every .emmplan file. The trailing newline makes a
// text-mode transfer corruption visible immediately.
constexpr char kMagic[8] = {'E', 'M', 'M', 'P', 'L', 'A', 'N', '\n'};
// 8-byte magic of .emmfam kernel-family records (same envelope layout).
constexpr char kFamilyMagic[8] = {'E', 'M', 'M', 'F', 'A', 'M', 'P', '\n'};

constexpr size_t kHeaderBytes = 8    // magic
                                + 4  // format version
                                + 8  // schema fingerprint
                                + 24  // PlanKey echo
                                + 8   // block digest
                                + 8   // options digest
                                + 8;  // payload length

std::string hex16(u64 v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[i] = digits[v & 0xF];
  return out;
}

bool readFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  out = std::move(data);
  return true;
}

void removeQuietly(const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

/// Why a present entry could not be used.
enum class Reject {
  None,
  Structural,  ///< corrupt/truncated/foreign-version file: safe to unlink
  Collision,   ///< valid file owned by a different (block, options): keep it
};

Reject validateAndExtract(const std::string& file, const char* magic, const PlanKey& key,
                          u64 blockDigest, u64 optionsDigest, std::string_view& payloadOut) {
  if (file.size() < kHeaderBytes) return Reject::Structural;
  if (std::memcmp(file.data(), magic, sizeof(kMagic)) != 0) return Reject::Structural;
  ByteReader r(std::string_view(file).substr(sizeof(kMagic)));
  try {
    if (r.u32v() != kPlanFormatVersion) return Reject::Structural;
    if (r.u64v() != serializeSchemaFingerprint()) return Reject::Structural;
    PlanKey echo;
    echo.block = r.u64v();
    echo.options = r.u64v();
    echo.passes = r.u64v();
    u64 fileBlockDigest = r.u64v();
    u64 fileOptionsDigest = r.u64v();
    u64 payloadLen = r.count();
    if (payloadLen + 8 > r.remaining()) return Reject::Structural;  // payload + checksum
    // The file name is derived from a 64-bit hash; the echo + digests are
    // what make a name collision a miss instead of a wrong plan.
    if (echo != key) return Reject::Collision;
    if (fileBlockDigest != blockDigest || fileOptionsDigest != optionsDigest)
      return Reject::Collision;
    std::string_view payload =
        std::string_view(file).substr(sizeof(kMagic) + r.position(), payloadLen);
    ByteReader tail(std::string_view(file).substr(sizeof(kMagic) + r.position() + payloadLen));
    if (tail.u64v() != digestBytes(payload)) return Reject::Structural;
    payloadOut = payload;
    return Reject::None;
  } catch (const SerializeError&) {
    return Reject::Structural;
  }
}

/// Serializes one cache-entry envelope (shared by .emmplan and .emmfam:
/// magic, format version, schema fingerprint, key echo, collision digests,
/// length-prefixed payload, checksum) and writes it to `path` via a unique
/// temp file in `dir` + atomic rename. Returns false when the directory is
/// unwritable (callers degrade silently).
bool writeEntryAtomically(const std::string& dir, const fs::path& path,
                          const std::string& fileName, const char* magic, u64 keyBlock,
                          u64 keyOptions, u64 keyPasses, u64 blockDigest, u64 optionsDigest,
                          const std::string& payload) {
  ByteWriter w;
  w.bytes(magic, sizeof(kMagic));
  w.u32v(kPlanFormatVersion);
  w.u64v(serializeSchemaFingerprint());
  w.u64v(keyBlock);
  w.u64v(keyOptions);
  w.u64v(keyPasses);
  w.u64v(blockDigest);
  w.u64v(optionsDigest);
  w.u64v(payload.size());
  w.bytes(payload.data(), payload.size());
  w.u64v(digestBytes(payload));

  // Unique temp name in the SAME directory (rename must not cross devices),
  // then an atomic rename: readers see the old entry or the new one, never
  // a torn write.
  static std::atomic<u64> tempCounter{0};
  const fs::path temp = fs::path(dir) / (fileName + ".tmp." + std::to_string(::getpid()) +
                                         "." + std::to_string(tempCounter.fetch_add(1)));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;  // unwritable directory: degrade silently
    out.write(w.buffer().data(), static_cast<std::streamsize>(w.buffer().size()));
    out.flush();
    if (!out.good()) {
      out.close();
      removeQuietly(temp);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(temp, path, ec);
  if (ec) {
    removeQuietly(temp);
    return false;
  }
  return true;
}

}  // namespace

DiskPlanCache::DiskPlanCache(std::string dir, i64 maxBytes)
    : dir_(std::move(dir)), maxBytes_(maxBytes) {
  EMM_REQUIRE(!dir_.empty(), "DiskPlanCache needs a directory path");
  EMM_REQUIRE(maxBytes_ > 0, "DiskPlanCache byte cap must be positive");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  EMM_REQUIRE(fs::is_directory(dir_, ec),
              "cannot create plan-cache directory '" + dir_ + "': " + ec.message());
  // Sweep temp files orphaned by a crash between write and rename; they
  // are invisible to the byte cap (everything below filters on .emmplan).
  // Racing a live writer's temp is possible but harmless: its rename
  // fails and that one insert is lost, which insert() already tolerates.
  // Zero-length entries are reaped too: a crashing filesystem can truncate
  // a renamed file, and an empty envelope can never decode — without the
  // sweep it would sit in the directory rejecting its key forever.
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec)) continue;
    if (de.path().filename().string().find(".emmplan.tmp.") != std::string::npos) {
      removeQuietly(de.path());
      continue;
    }
    std::error_code sec;
    if ((de.path().extension() == ".emmplan" || de.path().extension() == ".emmfam") &&
        de.file_size(sec) == 0 && !sec)
      removeQuietly(de.path());
  }
}

std::string DiskPlanCache::entryFileName(const PlanKey& key) {
  return hex16(hashCombine(key.block, hashCombine(key.options, key.passes))) + ".emmplan";
}

std::string DiskPlanCache::familyFileName(const FamilyKey& key) {
  return hex16(hashCombine(key.block, hashCombine(key.options, key.passes))) + ".emmfam";
}

std::string DiskPlanCache::entryPath(const PlanKey& key) const {
  return (fs::path(dir_) / entryFileName(key)).string();
}

std::string DiskPlanCache::familyPath(const FamilyKey& key) const {
  return (fs::path(dir_) / familyFileName(key)).string();
}

std::optional<CompileResult> DiskPlanCache::lookup(const PlanKey& key, const ProgramBlock& block,
                                                   const CompileOptions& options) {
  const fs::path path = entryPath(key);
  std::string file;
  if (!readFile(path, file)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const u64 blockDigest = digestBytes(serializeProgramBlock(block));
  const u64 optionsDigest = digestBytes(serializeCompileOptions(options));
  std::string_view payload;
  Reject verdict = validateAndExtract(file, kMagic, key, blockDigest, optionsDigest, payload);
  if (verdict == Reject::None) {
    try {
      CompileResult result = deserializeCompileResult(payload);
      result.diskHit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Refresh the LRU stamp so hot entries survive eviction.
      std::error_code ec;
      fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
      return result;
    } catch (const SerializeError&) {
      verdict = Reject::Structural;  // checksummed but unparseable: drop it
    }
  }
  if (verdict == Reject::Structural) removeQuietly(path);
  rejects_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void DiskPlanCache::insert(const PlanKey& key, const CompileOptions& options,
                           const CompileResult& result) {
  if (!result.ok || result.input == nullptr) return;
  const fs::path path = entryPath(key);
  if (!writeEntryAtomically(dir_, path, entryFileName(key), kMagic, key.block, key.options,
                            key.passes, digestBytes(serializeProgramBlock(*result.input)),
                            digestBytes(serializeCompileOptions(options)),
                            serializeCompileResult(result)))
    return;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  // Only the eviction scan serializes; a concurrent stats() or lookup()
  // proceeds untouched.
  std::lock_guard<std::mutex> lock(evictMutex_);
  evictLocked(path);
}


std::shared_ptr<const FamilyPlan> DiskPlanCache::lookupFamily(const FamilyKey& key,
                                                              u64 blockDigest,
                                                              u64 optionsDigest) {
  const fs::path path = familyPath(key);
  std::string file;
  if (!readFile(path, file)) {
    familyMisses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Collision guards digest the CANONICAL family forms, so every member of
  // the family derives the same digests and foreign entries are misses.
  PlanKey echo;  // same wire shape as the per-size key echo
  echo.block = key.block;
  echo.options = key.options;
  echo.passes = key.passes;
  std::string_view payload;
  Reject verdict = validateAndExtract(file, kFamilyMagic, echo, blockDigest, optionsDigest,
                                      payload);
  if (verdict == Reject::None) {
    try {
      std::shared_ptr<const FamilyPlan> plan = deserializeFamilyPlan(payload);
      familyHits_.fetch_add(1, std::memory_order_relaxed);
      return plan;
    } catch (const SerializeError&) {
      verdict = Reject::Structural;  // checksummed but unparseable: drop it
    }
  }
  if (verdict == Reject::Structural) removeQuietly(path);
  familyRejects_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void DiskPlanCache::insertFamily(const FamilyKey& key, u64 blockDigest, u64 optionsDigest,
                                 const std::shared_ptr<const FamilyPlan>& plan) {
  if (plan == nullptr) return;
  if (!writeEntryAtomically(dir_, familyPath(key), familyFileName(key), kFamilyMagic,
                            key.block, key.options, key.passes, blockDigest, optionsDigest,
                            serializeFamilyPlan(*plan)))
    return;
  familyInsertions_.fetch_add(1, std::memory_order_relaxed);
}

void DiskPlanCache::evictLocked(const std::filesystem::path& justWritten) {
  struct Entry {
    fs::path path;
    i64 size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  i64 total = 0;
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec) || de.path().extension() != ".emmplan") continue;
    Entry e;
    e.path = de.path();
    std::error_code sec, tec;
    e.size = static_cast<i64>(de.file_size(sec));
    e.mtime = de.last_write_time(tec);
    // A concurrent evictor/clear in a shared directory can remove the file
    // mid-iteration; skip it rather than folding the error value (-1) into
    // the total.
    if (sec || tec) continue;
    // Zero-length garbage (see the constructor sweep) is reaped in passing,
    // never counted against the cap or as an eviction of a real entry.
    if (e.size == 0) {
      removeQuietly(e.path);
      continue;
    }
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= maxBytes_) return;
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  // Oldest first, but never the entry just inserted — evicting it would
  // make an over-cap plan uncacheable forever. Matching by path, not by
  // newest mtime: on coarse-granularity filesystems the fresh file can tie
  // an older one and sort anywhere.
  for (size_t i = 0; i < entries.size() && total > maxBytes_; ++i) {
    if (entries[i].path == justWritten) continue;
    std::error_code rec;
    if (fs::remove(entries[i].path, rec)) {
      total -= entries[i].size;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void DiskPlanCache::clear() {
  std::lock_guard<std::mutex> lock(evictMutex_);
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec))
    if (de.is_regular_file(ec) &&
        (de.path().extension() == ".emmplan" || de.path().extension() == ".emmfam"))
      removeQuietly(de.path());
}

DiskPlanCache::Stats DiskPlanCache::stats() const {
  // Counters are atomics: the snapshot never blocks behind a concurrent
  // insert's eviction scan (or any disk write at all).
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.familyHits = familyHits_.load(std::memory_order_relaxed);
  s.familyMisses = familyMisses_.load(std::memory_order_relaxed);
  s.familyRejects = familyRejects_.load(std::memory_order_relaxed);
  s.familyInsertions = familyInsertions_.load(std::memory_order_relaxed);
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec)) continue;
    const bool plan = de.path().extension() == ".emmplan";
    const bool fam = de.path().extension() == ".emmfam";
    if (!plan && !fam) continue;
    std::error_code sec;
    i64 size = static_cast<i64>(de.file_size(sec));
    if (sec) continue;       // removed by a concurrent evictor: skip, not -1
    if (size == 0) continue;  // undecodable garbage, not an entry
    if (plan) {
      ++s.entries;
      s.bytes += size;
    } else {
      ++s.familyEntries;
      s.familyBytes += size;
    }
  }
  return s;
}

}  // namespace emm
