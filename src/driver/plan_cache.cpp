#include "driver/plan_cache.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace emm {

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<CompileResult> PlanCache::lookup(const PlanKey& key) {
  std::shared_ptr<const CompileResult> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entry = it->second;
  }
  // Clone outside the lock: deep copies are cheap next to a compile but not
  // free, and pool workers hit the cache concurrently.
  CompileResult out = entry->clone();
  out.cacheHit = true;
  return out;
}

void PlanCache::insert(const PlanKey& key, const CompileResult& result) {
  auto snapshot = std::make_shared<const CompileResult>(result.clone());
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, snapshot);
  if (!inserted) {
    it->second = std::move(snapshot);
    return;  // refresh in place; insertion order unchanged
  }
  insertionOrder_.push_back(key);
  if (entries_.size() > capacity_) {
    entries_.erase(insertionOrder_.front());
    insertionOrder_.pop_front();
    ++evictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<i64>(entries_.size());
  s.evictions = evictions_;
  return s;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertionOrder_.clear();
  hits_ = misses_ = evictions_ = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache* cache = new PlanCache;
  return *cache;
}

}  // namespace emm
