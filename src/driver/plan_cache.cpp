#include "driver/plan_cache.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "support/diagnostics.h"

namespace emm {

namespace {

/// Final avalanche of a 64-bit hash (the 64-bit finalizer from MurmurHash3).
/// The structural fingerprints are FNV-1a digests whose low bits correlate
/// for near-identical inputs (e.g. a --size sweep); shard selection needs
/// every bit of the key to influence the index or a sweep would pile one
/// shard high while the others idle.
u64 mix64(u64 x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

size_t nextPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Resolves the shard count: an explicit request is rounded up to a power
/// of two; 0 asks for the hardware concurrency. Always clamped so every
/// shard owns at least one entry of `capacity` (a cache of capacity 2
/// gets at most 2 shards — per-shard eviction must still be able to hold
/// an entry per shard) and to a sane ceiling.
size_t resolveShardCount(size_t requested, size_t capacity) {
  size_t n = requested != 0 ? requested : std::max<size_t>(1, std::thread::hardware_concurrency());
  n = nextPow2(std::min<size_t>(n, 256));
  while (n > capacity) n >>= 1;
  return std::max<size_t>(1, n);
}

}  // namespace

PlanCache::PlanCache(size_t capacity, size_t shards) {
  capacity = std::max<size_t>(1, capacity);
  shardCount_ = resolveShardCount(shards, capacity);
  shards_ = std::make_unique<Shard[]>(shardCount_);
  // Split the budget: shard i gets capacity/N plus one unit of the
  // remainder, so the totals sum to exactly `capacity`.
  const size_t base = capacity / shardCount_;
  const size_t rem = capacity % shardCount_;
  for (size_t i = 0; i < shardCount_; ++i) {
    shards_[i].capacity = base + (i < rem ? 1 : 0);
    shards_[i].snapshot.store(std::make_shared<const ResultMap>(), std::memory_order_release);
    shards_[i].familySnapshot.store(std::make_shared<const FamilyMap>(),
                                    std::memory_order_release);
  }
}

size_t PlanCache::shardOf(const PlanKey& key) const {
  const u64 h = mix64(hashCombine(key.block, hashCombine(key.options, key.passes)));
  return static_cast<size_t>(h & (shardCount_ - 1));
}

size_t PlanCache::shardOfFamily(const FamilyKey& key) const {
  const u64 h = mix64(hashCombine(key.block, hashCombine(key.options, key.passes)));
  return static_cast<size_t>(h & (shardCount_ - 1));
}

PlanCache::Shard& PlanCache::shardFor(const PlanKey& key) const { return shards_[shardOf(key)]; }

PlanCache::Shard& PlanCache::shardForFamily(const FamilyKey& key) const {
  return shards_[shardOfFamily(key)];
}

CompileResult PlanCache::cloneHit(const CompileResult& entry) {
  // Clone outside any lock: deep copies are cheap next to a compile but not
  // free, and pool workers hit the cache concurrently.
  CompileResult out = entry.clone();
  out.cacheHit = true;
  out.diskHit = false;    // a memory replay, even of a disk-loaded plan
  out.familyHit = false;  // the replay itself did not instantiate a family
  return out;
}

std::optional<CompileResult> PlanCache::lookup(const PlanKey& key) {
  Shard& shard = shardFor(key);
  std::shared_ptr<const CompileResult> entry;
  {
    // Lock-free warm path: probe the published epoch. A hit touches no lock.
    std::shared_ptr<const ResultMap> snap = shard.snapshot.load(std::memory_order_acquire);
    auto it = snap->find(key);
    if (it != snap->end()) entry = it->second;
  }
  if (entry == nullptr) {
    // Snapshot miss: consult the authoritative map (the key may have been
    // inserted since the last epoch was published).
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    entry = it->second;
    touchLocked(shard, key);
  } else {
    touchLockFree(shard, key);
  }
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  return cloneHit(*entry);
}

void PlanCache::touchLocked(Shard& shard, const PlanKey& key) {
  auto it = shard.lruPos.find(key);
  if (it != shard.lruPos.end())
    shard.lruOrder.splice(shard.lruOrder.end(), shard.lruOrder, it->second);
}

void PlanCache::touchLockFree(Shard& shard, const PlanKey& key) {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (lock.owns_lock()) touchLocked(shard, key);
}

void PlanCache::touchFamilyLocked(Shard& shard, const FamilyKey& key) {
  auto it = shard.familyPos.find(key);
  if (it != shard.familyPos.end())
    shard.familyOrder.splice(shard.familyOrder.end(), shard.familyOrder, it->second);
}

void PlanCache::touchFamilyLockFree(Shard& shard, const FamilyKey& key) {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (lock.owns_lock()) touchFamilyLocked(shard, key);
}

void PlanCache::insert(const PlanKey& key, const CompileResult& result) {
  auto snapshot = std::make_shared<const CompileResult>(result.clone());
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  insertLocked(shard, key, std::move(snapshot));
}

void PlanCache::insertLocked(Shard& shard, const PlanKey& key,
                             std::shared_ptr<const CompileResult> snapshot) {
  auto [it, inserted] = shard.entries.emplace(key, snapshot);
  if (inserted) {
    shard.lruPos[key] = shard.lruOrder.insert(shard.lruOrder.end(), key);
    if (shard.entries.size() > shard.capacity) {
      const PlanKey victim = shard.lruOrder.front();
      shard.lruOrder.pop_front();
      shard.lruPos.erase(victim);
      shard.entries.erase(victim);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    it->second = std::move(snapshot);  // refresh in place
    touchLocked(shard, key);           // an overwrite counts as a use
  }
  // Publish the new epoch for the lock-free readers.
  shard.snapshot.store(std::make_shared<const ResultMap>(shard.entries),
                       std::memory_order_release);
}

void PlanCache::finishFlight(Shard& shard, const PlanKey& key,
                             const std::shared_ptr<InFlight>& flight,
                             std::shared_ptr<const CompileResult> snapshot) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (snapshot != nullptr) insertLocked(shard, key, snapshot);
  flight->result = std::move(snapshot);
  flight->done = true;
  shard.inflight.erase(key);
  shard.flightDone.notify_all();
}

CompileResult PlanCache::getOrCompute(const PlanKey& key,
                                      const std::function<CompileResult()>& compute) {
  Shard& shard = shardFor(key);
  {
    // Lock-free warm path, same as lookup(). In-flight keys are invisible
    // to snapshots (they have no entry yet), so single-flight semantics are
    // decided on the mutex path below.
    std::shared_ptr<const ResultMap> snap = shard.snapshot.load(std::memory_order_acquire);
    auto it = snap->find(key);
    if (it != snap->end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      touchLockFree(shard, key);
      return cloneHit(*it->second);
    }
  }
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    while (true) {
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        touchLocked(shard, key);
        std::shared_ptr<const CompileResult> entry = it->second;
        lock.unlock();
        return cloneHit(*entry);
      }
      auto fit = shard.inflight.find(key);
      if (fit == shard.inflight.end()) break;  // no leader: become one
      std::shared_ptr<InFlight> waitFor = fit->second;
      shard.flightDone.wait(lock, [&] { return waitFor->done; });
      if (waitFor->result != nullptr) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        std::shared_ptr<const CompileResult> entry = waitFor->result;
        lock.unlock();
        return cloneHit(*entry);
      }
      // The leader failed; loop to retry (and maybe become the next leader).
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    flight = std::make_shared<InFlight>();
    shard.inflight.emplace(key, flight);
  }
  CompileResult result;
  try {
    result = compute();
  } catch (...) {
    finishFlight(shard, key, flight, nullptr);
    throw;
  }
  std::shared_ptr<const CompileResult> snapshot;
  if (result.ok) snapshot = std::make_shared<const CompileResult>(result.clone());
  finishFlight(shard, key, flight, std::move(snapshot));
  return result;
}

std::shared_ptr<const FamilyPlan> PlanCache::lookupFamily(const FamilyKey& key,
                                                          u64 collisionDigest) {
  Shard& shard = shardForFamily(key);
  {
    std::shared_ptr<const FamilyMap> snap =
        shard.familySnapshot.load(std::memory_order_acquire);
    auto it = snap->find(key);
    if (it != snap->end()) {
      if (it->second.digest != collisionDigest) {
        // A colliding key with a foreign digest is a miss, never a wrong
        // plan — and since entries are never replaced in place, the
        // authoritative map cannot disagree; skip the lock.
        shard.familyMisses.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      shard.familyHits.fetch_add(1, std::memory_order_relaxed);
      // Re-touch on the snapshot fast path too (best effort, try_lock):
      // without this a hot family never moves off the cold end and can be
      // evicted under insert pressure despite serving every lookup.
      std::shared_ptr<const FamilyPlan> plan = it->second.plan;
      touchFamilyLockFree(shard, key);
      return plan;
    }
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.families.find(key);
  if (it == shard.families.end() || it->second.digest != collisionDigest) {
    shard.familyMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.familyHits.fetch_add(1, std::memory_order_relaxed);
  touchFamilyLocked(shard, key);
  return it->second.plan;
}

void PlanCache::insertFamily(const FamilyKey& key, u64 collisionDigest,
                             std::shared_ptr<const FamilyPlan> plan) {
  if (plan == nullptr) return;
  Shard& shard = shardForFamily(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.families.emplace(key, FamilyEntry{collisionDigest, std::move(plan)});
  if (!inserted) return;  // first writer wins; families are built once
  shard.familyPos[key] = shard.familyOrder.insert(shard.familyOrder.end(), key);
  if (shard.families.size() > shard.capacity) {
    const FamilyKey victim = shard.familyOrder.front();
    shard.familyOrder.pop_front();
    shard.familyPos.erase(victim);
    shard.families.erase(victim);
    shard.familyEvictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.familySnapshot.store(std::make_shared<const FamilyMap>(shard.families),
                             std::memory_order_release);
}

PlanCache::Stats PlanCache::stats() const {
  // Per-shard coherence: each shard's counters are read with its mutex
  // held, so entries and the misses that produced them come from one
  // instant. (Hits tick off-lock on the snapshot path; a concurrent hit
  // may land in one shard's total and not another's, which only ever
  // under-reports in-flight traffic, never tears an invariant.)
  Stats s;
  for (size_t i = 0; i < shardCount_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.misses += shard.misses.load(std::memory_order_relaxed);
    s.entries += static_cast<i64>(shard.entries.size());
    s.evictions += shard.evictions.load(std::memory_order_relaxed);
    s.familyHits += shard.familyHits.load(std::memory_order_relaxed);
    s.familyMisses += shard.familyMisses.load(std::memory_order_relaxed);
    s.familyEntries += static_cast<i64>(shard.families.size());
    s.familyEvictions += shard.familyEvictions.load(std::memory_order_relaxed);
  }
  return s;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < shardCount_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    n += shards_[i].entries.size();
  }
  return n;
}

void PlanCache::clear() {
  // Hold every shard mutex (ascending order — the only multi-shard lock
  // path, so no ordering conflicts) for the whole wipe: no mutex-path
  // observer can see shard A empty and shard B still populated.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shardCount_);
  for (size_t i = 0; i < shardCount_; ++i) locks.emplace_back(shards_[i].mutex);
  for (size_t i = 0; i < shardCount_; ++i) {
    Shard& shard = shards_[i];
    shard.entries.clear();
    shard.lruOrder.clear();
    shard.lruPos.clear();
    shard.families.clear();
    shard.familyOrder.clear();
    shard.familyPos.clear();
    shard.snapshot.store(std::make_shared<const ResultMap>(), std::memory_order_release);
    shard.familySnapshot.store(std::make_shared<const FamilyMap>(), std::memory_order_release);
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.evictions.store(0, std::memory_order_relaxed);
    shard.familyHits.store(0, std::memory_order_relaxed);
    shard.familyMisses.store(0, std::memory_order_relaxed);
    shard.familyEvictions.store(0, std::memory_order_relaxed);
  }
}

PlanCache& PlanCache::global() {
  static PlanCache* cache = new PlanCache;
  return *cache;
}

}  // namespace emm
