#include "driver/plan_cache.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace emm {

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

std::optional<CompileResult> PlanCache::lookup(const PlanKey& key) {
  std::shared_ptr<const CompileResult> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entry = it->second;
  }
  // Clone outside the lock: deep copies are cheap next to a compile but not
  // free, and pool workers hit the cache concurrently.
  CompileResult out = entry->clone();
  out.cacheHit = true;
  out.diskHit = false;    // a memory replay, even of a disk-loaded plan
  out.familyHit = false;  // the replay itself did not instantiate a family
  return out;
}

void PlanCache::insert(const PlanKey& key, const CompileResult& result) {
  auto snapshot = std::make_shared<const CompileResult>(result.clone());
  std::lock_guard<std::mutex> lock(mutex_);
  insertLocked(key, std::move(snapshot));
}

void PlanCache::insertLocked(const PlanKey& key, std::shared_ptr<const CompileResult> snapshot) {
  auto [it, inserted] = entries_.emplace(key, snapshot);
  if (!inserted) {
    it->second = std::move(snapshot);
    return;  // refresh in place; insertion order unchanged
  }
  insertionOrder_.push_back(key);
  if (entries_.size() > capacity_) {
    entries_.erase(insertionOrder_.front());
    insertionOrder_.pop_front();
    ++evictions_;
  }
}

void PlanCache::finishFlight(const PlanKey& key, const std::shared_ptr<InFlight>& flight,
                             std::shared_ptr<const CompileResult> snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (snapshot != nullptr) insertLocked(key, snapshot);
  flight->result = std::move(snapshot);
  flight->done = true;
  inflight_.erase(key);
  flightDone_.notify_all();
}

CompileResult PlanCache::getOrCompute(const PlanKey& key,
                                      const std::function<CompileResult()>& compute) {
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        std::shared_ptr<const CompileResult> entry = it->second;
        lock.unlock();
        CompileResult out = entry->clone();
        out.cacheHit = true;
        out.diskHit = false;
        out.familyHit = false;
        return out;
      }
      auto fit = inflight_.find(key);
      if (fit == inflight_.end()) break;  // no leader: become one
      std::shared_ptr<InFlight> waitFor = fit->second;
      flightDone_.wait(lock, [&] { return waitFor->done; });
      if (waitFor->result != nullptr) {
        ++hits_;
        std::shared_ptr<const CompileResult> entry = waitFor->result;
        lock.unlock();
        CompileResult out = entry->clone();
        out.cacheHit = true;
        out.diskHit = false;
        out.familyHit = false;
        return out;
      }
      // The leader failed; loop to retry (and maybe become the next leader).
    }
    ++misses_;
    flight = std::make_shared<InFlight>();
    inflight_.emplace(key, flight);
  }
  CompileResult result;
  try {
    result = compute();
  } catch (...) {
    finishFlight(key, flight, nullptr);
    throw;
  }
  std::shared_ptr<const CompileResult> snapshot;
  if (result.ok) snapshot = std::make_shared<const CompileResult>(result.clone());
  finishFlight(key, flight, std::move(snapshot));
  return result;
}

std::shared_ptr<const FamilyPlan> PlanCache::lookupFamily(const FamilyKey& key,
                                                          u64 collisionDigest) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = families_.find(key);
  if (it == families_.end() || it->second.digest != collisionDigest) {
    // A colliding key with a foreign digest is a miss, never a wrong plan.
    ++familyMisses_;
    return nullptr;
  }
  ++familyHits_;
  return it->second.plan;
}

void PlanCache::insertFamily(const FamilyKey& key, u64 collisionDigest,
                             std::shared_ptr<const FamilyPlan> plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.emplace(key, FamilyEntry{collisionDigest, std::move(plan)});
  if (!inserted) return;  // first writer wins; families are built once
  familyOrder_.push_back(key);
  if (families_.size() > capacity_) {
    families_.erase(familyOrder_.front());
    familyOrder_.pop_front();
    ++familyEvictions_;
  }
}

PlanCache::Stats PlanCache::stats() const {
  // All four fields are read under the same mutex that every writer holds,
  // so the snapshot is coherent: hits/misses/evictions/entries come from
  // one instant, never a torn mix of two updates racing with the reader.
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<i64>(entries_.size());
  s.evictions = evictions_;
  s.familyHits = familyHits_;
  s.familyMisses = familyMisses_;
  s.familyEntries = static_cast<i64>(families_.size());
  s.familyEvictions = familyEvictions_;
  return s;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  insertionOrder_.clear();
  families_.clear();
  familyOrder_.clear();
  hits_ = misses_ = evictions_ = 0;
  familyHits_ = familyMisses_ = familyEvictions_ = 0;
}

PlanCache& PlanCache::global() {
  static PlanCache* cache = new PlanCache;
  return *cache;
}

}  // namespace emm
