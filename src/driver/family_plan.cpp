#include "driver/family_plan.h"

#include "driver/options.h"
#include "support/fingerprint.h"

namespace emm {

ProgramBlock familyCanonicalBlock(const ProgramBlock& block) {
  ProgramBlock canon = block;
  for (ArrayDecl& a : canon.arrays)
    for (i64& e : a.extents) e = 0;  // rank survives, concrete sizes do not
  return canon;
}

CompileOptions familyCanonicalOptions(const CompileOptions& options) {
  CompileOptions canon = options;
  canon.paramValues.clear();
  // Codegen-only knobs never reach the family products (dependences,
  // transform, tile plan); note that a backend's SEMANTIC effect —
  // cell forcing stageEverything — is applied by effectiveOptions()
  // before any hashing, so it still separates families.
  canon.backendName.clear();
  canon.kernelName.clear();
  canon.elementType.clear();
  canon.numBoundParams = -1;
  return canon;
}

u64 hashProgramBlockFamily(const ProgramBlock& block) {
  return hashProgramBlock(familyCanonicalBlock(block));
}

u64 hashCompileOptionsFamily(const CompileOptions& options) {
  return hashCompileOptions(familyCanonicalOptions(options));
}

}  // namespace emm
