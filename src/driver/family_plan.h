// Kernel-family plans: the size-generic tier of the compilation service.
//
// A kernel FAMILY is the set of program blocks that differ only in their
// problem sizes — same statements, domains (symbolic in the size
// parameters), accesses, schedules and array ranks, but different concrete
// array extents and CompileOptions::paramValues. Everything the pipeline
// computes BEFORE sizes are bound is family-invariant:
//
//   - dependences: computed from domains/accesses/schedules, which never
//     mention extents — identical polyhedra for every family member,
//   - the enabling transformation (skews) and the parallelism plan: derived
//     from those dependences; the transformed statements are shared and
//     only the array table differs per member,
//   - the ParametricTilePlan: since PR 5 its formulas keep the problem
//     sizes symbolic, so one plan evaluates candidates for every member via
//     ParametricTilePlan::bindSizes.
//
// A FamilyPlan bundles those products. The driver keys it on family
// fingerprints (extents and paramValues canonicalized away), stores it in
// the PlanCache's family tier (and on disk as a .emmfam record), and a
// per-size compile that finds one skips dependence analysis, the transform
// search and the symbolic plan build — the remaining work (candidate
// expression evaluation, tiling, scratchpad planning, codegen) is the cheap
// bind-and-emit step, reported as CompileResult::familyHit.
//
// Safety: the tile plan is revalidated against concrete probe evaluations
// at every size it is bound to (TileEvaluator::adoptFamilyPlan), and both
// cache tiers guard the 64-bit family keys with digests of the canonical
// family serializations, so a hash collision or an unsound family plan
// degrades to a cold compile instead of changing any result.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deps/dependence.h"
#include "driver/options.h"
#include "tilesearch/parametric_plan.h"
#include "transform/transform.h"

namespace emm {

struct CompileResult;

using u64 = std::uint64_t;

/// Family cache key: fingerprints of the size-canonicalized block and
/// option set plus the skipped-pass digest (family products depend on which
/// passes ran).
struct FamilyKey {
  u64 block = 0;    ///< hashProgramBlockFamily of the source
  u64 options = 0;  ///< hashCompileOptionsFamily of the effective options
  u64 passes = 0;   ///< digest of the sorted skipped-pass names

  auto operator<=>(const FamilyKey&) const = default;
};

/// The family-invariant pipeline products (see file comment). Immutable
/// once published; shared by every per-size compile of the family.
struct FamilyPlan {
  // ---- deps tier ----
  bool haveDeps = false;
  std::vector<Dependence> deps;

  // ---- transform tier ----
  /// Valid when the transform pass ran (not on scratchpad-only pipelines).
  bool haveTransform = false;
  /// The transformed block of the member that built the plan; statements,
  /// schedules and parameter names are family-invariant, the array table is
  /// swapped per member at instantiation.
  ProgramBlock transformedTemplate;
  ParallelismPlan plan;
  std::vector<std::pair<int, std::pair<int, i64>>> appliedSkews;

  // ---- tilesearch tier ----
  /// Size-generic symbolic plan, or null when the kernel family is not
  /// parametrically analyzable (or the pipeline path has no tile search).
  std::shared_ptr<const ParametricTilePlan> tilePlan;
  /// Why tilePlan is null — surfaced per kernel in `emmapc --emit=stats`
  /// batch output so a family that degrades to per-size compiles is
  /// visible ("" when tilePlan is set or the path has no search).
  std::string parametricReason;

  // ---- codegen tier (plan format v4) ----
  /// Size-generic compiled record: the full products of the member that
  /// built the family, stored when its artifact came out size-generic
  /// (ArtifactInfo::sizeGeneric). Further members are then served by
  /// RuntimeBinder::bindFamilyArtifact — guard validation plus an argument
  /// fill against this ONE artifact, no pipeline run, no re-emission.
  bool haveRecord = false;
  /// Options the record was emitted under. The family key neutralizes the
  /// codegen-only fields (backend, kernel name, element type, bound count),
  /// so the binder re-checks them per request and falls back to
  /// bind-and-emit on mismatch.
  CompileOptions recordOptions;
  std::shared_ptr<const CompileResult> record;
};

/// The block with its concrete problem sizes canonicalized away (array
/// extents zeroed, ranks kept): two family members map to the same
/// canonical block.
ProgramBlock familyCanonicalBlock(const ProgramBlock& block);

/// The option set with paramValues and the codegen-only fields (backend,
/// kernel name, element type, bound-parameter count) neutralized: none of
/// them reach the family products, so one family serves every emit target.
/// (A backend's semantic side effect — cell forcing stageEverything — is
/// applied by Compiler::effectiveOptions() before hashing and still
/// separates families.)
CompileOptions familyCanonicalOptions(const CompileOptions& options);

/// Family fingerprints: the structural hashes of the canonical forms.
/// (The driver canonicalizes once and hashes the forms directly; these
/// wrappers serve tests and external callers.)
u64 hashProgramBlockFamily(const ProgramBlock& block);
u64 hashCompileOptionsFamily(const CompileOptions& options);

}  // namespace emm
