// DiskPlanCache: the persistent second tier of the plan cache.
//
// The in-memory PlanCache makes repeated compiles within one process cheap,
// but every `emmapc` invocation and every service restart still starts
// cold. This cache persists finished plans to `<dir>/<fingerprint>.emmplan`
// files (format: support/serialize.h and docs/PLAN_FORMAT.md) so the stable
// structural fingerprints in support/fingerprint.h can replay them across
// processes.
//
// Tiering (wired in Compiler::compile): memory hit -> disk hit -> cold
// compile. A disk hit is deserialized, marked CompileResult::diskHit, and —
// because the single-flight leader's result is stored like any other ok
// result — promoted into the attached memory cache. A cold compile that
// succeeds is written back to disk.
//
// Failure policy: the disk tier NEVER fails a compile. Truncated files,
// flipped magic bytes, stale format versions, schema-fingerprint drift,
// checksum mismatches and malformed payloads are all rejected with a
// counted diagnostic and fall through to a cold compile; structurally
// broken files are unlinked so they stop costing a parse per lookup. The
// 64-bit cache key has no collision resistance, so the header also carries
// digests of the canonically serialized source block and option set; a
// colliding key whose digests disagree is treated as a miss (and the file
// — valid, just owned by someone else — is left in place).
//
// Durability: entries are written to a temp file in the cache directory and
// atomically renamed into place, so readers never observe a half-written
// entry. Eviction is LRU by file modification time (hits re-touch their
// entry) with a configurable byte cap.
//
// Thread-safe; one instance may be shared by every Compiler in the process
// (and the directory may be shared by many processes — rename keeps
// concurrent writers safe, last write wins). Counters are relaxed atomics,
// so stats() and the lookup hot path never block behind a concurrent
// insert's eviction scan; the only mutex serializes directory mutation
// (eviction and clear), which file writes and reads never need.
#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>

#include "driver/plan_cache.h"

namespace emm {

class DiskPlanCache {
public:
  /// Counters since construction (this instance only; the directory may be
  /// older). `entries`/`bytes` reflect the directory at the time of the
  /// call.
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;      ///< no entry file for the key
    i64 rejects = 0;     ///< entry present but unusable (corrupt/version/collision)
    i64 evictions = 0;   ///< entries removed by the LRU byte cap
    i64 insertions = 0;  ///< entries written
    i64 entries = 0;     ///< .emmplan files currently in the directory
    i64 bytes = 0;       ///< their total size
    // Family tier (.emmfam kernel-family records; exempt from the LRU byte
    // cap — a directory holds a handful of families at most).
    i64 familyHits = 0;
    i64 familyMisses = 0;
    i64 familyRejects = 0;
    i64 familyInsertions = 0;
    i64 familyEntries = 0;  ///< .emmfam files currently in the directory
    i64 familyBytes = 0;
  };

  /// Opens (and creates, including parents) the cache directory. `maxBytes`
  /// caps the directory's total .emmplan size; inserts evict
  /// least-recently-used entries down to the cap. Throws ApiError when the
  /// directory cannot be created.
  explicit DiskPlanCache(std::string dir, i64 maxBytes = i64(256) * 1024 * 1024);

  const std::string& directory() const { return dir_; }
  i64 maxBytes() const { return maxBytes_; }

  /// Loads the entry for `key`, verifying the header (magic, version,
  /// schema fingerprint, key echo) and the collision-guard digests of
  /// `block`/`options` before deserializing the checksummed payload. On
  /// success the result has diskHit set and the entry's LRU stamp is
  /// refreshed. Any failure returns nullopt — never throws, never returns a
  /// wrong plan.
  std::optional<CompileResult> lookup(const PlanKey& key, const ProgramBlock& block,
                                      const CompileOptions& options);

  /// Persists `result` (which must own its input block — the digest is
  /// taken from it) under `key` with write-then-rename, then enforces the
  /// byte cap. Failures are swallowed: a read-only or full disk degrades
  /// the cache, not the compile.
  void insert(const PlanKey& key, const CompileOptions& options, const CompileResult& result);

  // ---- family tier (size-generic kernel-family plans) ------------------
  /// Loads the .emmfam record for `key`, verifying the header (magic,
  /// version, schema fingerprint, key echo) and the caller-supplied
  /// collision-guard digests (of the canonically serialized CANONICAL
  /// family block/options — the driver computes them once per compile)
  /// before deserializing the checksummed payload. Any failure returns
  /// nullptr.
  std::shared_ptr<const FamilyPlan> lookupFamily(const FamilyKey& key, u64 blockDigest,
                                                 u64 optionsDigest);

  /// Persists a kernel-family plan under `key` with write-then-rename.
  /// Failures are swallowed like insert()'s.
  void insertFamily(const FamilyKey& key, u64 blockDigest, u64 optionsDigest,
                    const std::shared_ptr<const FamilyPlan>& plan);

  /// Removes every .emmplan and .emmfam entry in the directory (counters
  /// keep running).
  void clear();

  Stats stats() const;

  /// Entry file name for a key: 16 lowercase hex digits of the combined
  /// key hash plus the ".emmplan" suffix.
  static std::string entryFileName(const PlanKey& key);
  /// Family record name: 16 hex digits of the family-key hash + ".emmfam".
  static std::string familyFileName(const FamilyKey& key);

private:
  std::string entryPath(const PlanKey& key) const;
  std::string familyPath(const FamilyKey& key) const;
  /// Enforces the byte cap, never evicting `justWritten`; requires
  /// evictMutex_.
  void evictLocked(const std::filesystem::path& justWritten);

  std::string dir_;
  i64 maxBytes_;
  /// Serializes eviction scans and clear() — directory mutation only.
  /// Lookups, inserts and stats() never take it: counters are atomics and
  /// file-level atomicity comes from write-temp-then-rename.
  mutable std::mutex evictMutex_;
  std::atomic<i64> hits_{0};
  std::atomic<i64> misses_{0};
  std::atomic<i64> rejects_{0};
  std::atomic<i64> evictions_{0};
  std::atomic<i64> insertions_{0};
  std::atomic<i64> familyHits_{0};
  std::atomic<i64> familyMisses_{0};
  std::atomic<i64> familyRejects_{0};
  std::atomic<i64> familyInsertions_{0};
};

}  // namespace emm
