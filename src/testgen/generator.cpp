#include "testgen/generator.h"

#include <algorithm>
#include <sstream>

namespace emm::testgen {

namespace {

/// Constraint/access row over [iters(dim), params(np), 1].
IntVec row(int dim, int np) { return IntVec(dim + np + 1, 0); }

/// Structural skeleton of one statement while the program is being built:
/// concrete per-loop bounds are tracked so array extents can be derived.
struct StmtShape {
  int dim = 0;
  IntVec lo;     ///< concrete lower bound per loop
  IntVec hi;     ///< concrete upper bound per loop (parametric bounds evaluated)
  IntVec upOff;  ///< parametric upper bound is i_j <= N - 1 - upOff[j]; -1 = constant
};

/// The clamp keeping generated values exactly representable: stored values
/// stay in [-kClamp, kClamp], so even a product of two loads (the deepest
/// multiplication the generator emits) stays far below 2^53 and every
/// intermediate is exact — no inf/NaN can ever enter an array, which would
/// make bitwise output comparison meaningless (NaN != NaN).
constexpr double kClamp = 1e6;

}  // namespace

GeneratedProgram ProgramGenerator::generate(u64 index) const {
  const GeneratorOptions& o = options_;
  Rng rng(mixSeed(o.seed, index));

  ProgramBlock block;
  block.name = "gen_s" + std::to_string(o.seed) + "_p" + std::to_string(index);
  IntVec paramValues;

  const int nstmt = static_cast<int>(rng.range(o.minStatements, o.maxStatements));

  // 1. Loop structure: depth and concrete/parametric rectangular bounds.
  //
  // Parametric is a whole-program choice with a single shared parameter N:
  // every loop gets i_j <= N - 1 - off_j (off_j in 0..2). Mixing bound
  // classes — one loop bounded by a parameter, another by a constant, both
  // indexing the same array dimension — leaves the scratchpad analysis with
  // no buffer bound valid for an unbounded symbolic N (neither "16" nor
  // "N-1" dominates the other), so every such program would be a fallback.
  // A single parameter keeps all symbolic bounds mutually comparable while
  // still exercising the parametric pipeline end to end.
  const bool parametric = rng.chance(o.parametricPercent);
  i64 paramN = 0;
  if (parametric) {
    paramN = rng.range(o.minTrip + 3, std::max(o.minTrip + 3, o.maxTrip));
    block.paramNames.push_back("N0");
    paramValues.push_back(paramN);
  }
  std::vector<StmtShape> shapes(nstmt);
  int maxStmtDim = 1;
  int minStmtDim = o.maxDim;
  for (StmtShape& sh : shapes) {
    sh.dim = static_cast<int>(rng.range(1, o.maxDim));
    maxStmtDim = std::max(maxStmtDim, sh.dim);
    minStmtDim = std::min(minStmtDim, sh.dim);
    for (int j = 0; j < sh.dim; ++j) {
      const i64 lo = rng.range(0, 1);
      if (parametric) {
        const i64 off = rng.range(0, 2);
        sh.lo.push_back(lo);
        sh.hi.push_back(paramN - 1 - off);
        sh.upOff.push_back(off);
      } else {
        const i64 trip = rng.range(o.minTrip, o.maxTrip);
        sh.lo.push_back(lo);
        sh.hi.push_back(lo + trip - 1);
        sh.upOff.push_back(-1);
      }
    }
  }
  const int np = block.nparam();

  // 2. Arrays. Dimensionality is capped at 2 (and at the shallowest
  // statement's depth for array 0, so every statement has a write target
  // with ndim <= dim). Extents are filled in after all accesses exist.
  const int narr = static_cast<int>(rng.range(1, o.maxArrays));
  for (int a = 0; a < narr; ++a) {
    const int maxNdim = std::min(2, a == 0 ? minStmtDim : maxStmtDim);
    const int ndim = static_cast<int>(rng.range(1, maxNdim));
    block.arrays.push_back({"A" + std::to_string(a), IntVec(ndim, 1)});
  }

  // 3. Statements: write access, reads, body, schedule.
  std::vector<int> writeArrayOf(nstmt, 0);
  for (int s = 0; s < nstmt; ++s) {
    const StmtShape& sh = shapes[s];
    Statement st;
    st.name = "S" + std::to_string(s);
    st.domain = Polyhedron(sh.dim, np);
    for (int j = 0; j < sh.dim; ++j) {
      IntVec lower = row(sh.dim, np);
      lower[j] = 1;
      lower.back() = -sh.lo[j];
      st.domain.addInequality(lower);  // i_j >= lo
      IntVec upper = row(sh.dim, np);
      upper[j] = -1;
      if (sh.upOff[j] >= 0) {
        upper[sh.dim] = 1;
        upper.back() = -1 - sh.upOff[j];  // i_j <= N - 1 - off
      } else {
        upper.back() = sh.hi[j];  // i_j <= hi
      }
      st.domain.addInequality(upper);
    }

    // Write access: an injective map from array dims onto distinct
    // iterators (a random choice of which, so transposed and reduction
    // writes — ndim < dim — both occur).
    std::vector<int> writeCandidates;
    for (int a = 0; a < narr; ++a)
      if (block.arrays[a].ndim() <= sh.dim) writeCandidates.push_back(a);
    const int wArr = rng.pick(writeCandidates);
    writeArrayOf[s] = wArr;
    const int wNdim = block.arrays[wArr].ndim();
    std::vector<int> iterPool(sh.dim);
    for (int j = 0; j < sh.dim; ++j) iterPool[j] = j;
    for (int j = sh.dim - 1; j > 0; --j)
      std::swap(iterPool[j], iterPool[rng.range(0, j)]);  // Fisher-Yates
    Access w;
    w.arrayId = wArr;
    w.isWrite = true;
    w.fn = IntMat(0, sh.dim + np + 1);
    for (int r = 0; r < wNdim; ++r) {
      IntVec fr = row(sh.dim, np);
      fr[iterPool[r]] = 1;
      w.fn.appendRow(fr);
    }
    st.accesses.push_back(w);
    st.writeAccess = 0;

    // Reads: stencil-offset rows, occasional two-iterator rows (the
    // figure1/me idiom) and constant broadcast rows, with a bias toward
    // arrays other statements write so cross-statement dependences occur
    // at a controlled rate.
    const int nreads = static_cast<int>(rng.range(1, o.maxReads));
    bool selfRead = rng.chance(o.accumulatePercent);
    for (int k = 0; k < nreads; ++k) {
      int target;
      if (nstmt > 1 && rng.chance(o.crossReadPercent)) {
        int other = static_cast<int>(rng.range(0, nstmt - 2));
        if (other >= s) ++other;
        // Producer statements later in the list have not picked their
        // write array yet; fall back to a uniform array pick for them.
        target = other < s ? writeArrayOf[other] : static_cast<int>(rng.range(0, narr - 1));
      } else {
        target = static_cast<int>(rng.range(0, narr - 1));
      }
      Access r;
      r.arrayId = target;
      r.isWrite = false;
      r.fn = IntMat(0, sh.dim + np + 1);
      for (int d = 0; d < block.arrays[target].ndim(); ++d) {
        IntVec fr = row(sh.dim, np);
        if (rng.chance(10)) {
          fr.back() = rng.range(0, 2);  // constant broadcast row
        } else if (sh.dim >= 2 && rng.chance(15)) {
          int a = static_cast<int>(rng.range(0, sh.dim - 1));
          int b = static_cast<int>(rng.range(0, sh.dim - 2));
          if (b >= a) ++b;
          fr[a] = 1;
          fr[b] = 1;
          fr.back() = rng.range(-1, 1);
        } else {
          fr[rng.range(0, sh.dim - 1)] = 1;
          fr.back() = rng.range(-2, 2);
        }
        r.fn.appendRow(fr);
      }
      st.accesses.push_back(r);
    }
    if (selfRead) {
      Access r = w;  // read-modify-write of the output location
      r.isWrite = false;
      st.accesses.push_back(r);
    }

    // Body: fold every read into a random operator tree. Multiplication is
    // limited to one use and never touches the self-read (accumulating
    // products explode past double's exact range); the final clamp bounds
    // stored magnitudes (see kClamp).
    ExprPtr e = Expr::load(1);
    bool usedMul = false;
    for (size_t k = 2; k < st.accesses.size(); ++k) {
      ExprPtr load = Expr::load(static_cast<int>(k));
      const bool isSelf = selfRead && k + 1 == st.accesses.size();
      switch (rng.range(0, isSelf || usedMul ? 3 : 4)) {
        case 0: e = Expr::add(e, load); break;
        case 1: e = Expr::sub(e, load); break;
        case 2: e = Expr::min(e, load); break;
        case 3: e = Expr::max(e, load); break;
        default: e = Expr::mul(e, load); usedMul = true; break;
      }
    }
    if (rng.chance(20)) e = Expr::abs(e);
    if (rng.chance(20)) e = Expr::div(e, Expr::constant(rng.chance(50) ? 2 : 4));
    if (rng.chance(30)) e = Expr::add(e, Expr::constant(static_cast<double>(rng.range(-3, 3))));
    st.rhs = Expr::min(Expr::max(std::move(e), Expr::constant(-kClamp)), Expr::constant(kClamp));

    // Schedule: 2d+1 interleaving. Statement 0 sits at position 0
    // everywhere; a later statement takes static position s at one random
    // depth, which yields fused outer loops, fission at an inner depth, or
    // fully sequenced statements — all the nesting shapes the kernels use.
    std::vector<i64> positions(sh.dim + 1, 0);
    if (s > 0) positions[rng.range(0, sh.dim)] = s;
    st.schedule = ProgramBlock::interleavedSchedule(sh.dim, np, positions);

    block.statements.push_back(std::move(st));
  }

  // 4. Extents: per array dimension, the concrete min/max over every access
  // row (access coefficients are non-negative, so iterator lows/highs give
  // the range directly). A uniform constant shift per array dimension lifts
  // negative minima to zero — relative stencil offsets, and therefore
  // dependences, are unchanged — and the extent covers the shifted max.
  for (int a = 0; a < narr; ++a) {
    const int ndim = block.arrays[a].ndim();
    for (int d = 0; d < ndim; ++d) {
      i64 minIdx = 0, maxIdx = 0;
      bool seen = false;
      for (int s = 0; s < nstmt; ++s) {
        for (const Access& acc : block.statements[s].accesses) {
          if (acc.arrayId != a) continue;
          const IntVec fr = acc.fn.row(d);
          i64 lo = fr.back(), hi = fr.back();
          for (int j = 0; j < shapes[s].dim; ++j) {
            lo += fr[j] * shapes[s].lo[j];
            hi += fr[j] * shapes[s].hi[j];
          }
          minIdx = seen ? std::min(minIdx, lo) : lo;
          maxIdx = seen ? std::max(maxIdx, hi) : hi;
          seen = true;
        }
      }
      const i64 shift = minIdx < 0 ? -minIdx : 0;
      if (shift > 0) {
        for (Statement& st : block.statements)
          for (Access& acc : st.accesses)
            if (acc.arrayId == a) acc.fn.at(d, acc.fn.cols() - 1) += shift;
      }
      block.arrays[a].extents[d] = std::max<i64>(maxIdx + shift + 1, 1);
    }
  }

  block.validate();
  return {std::move(block), std::move(paramValues), o.seed, index};
}

std::string describeProgram(const GeneratedProgram& program) {
  std::ostringstream os;
  os << printProgramBlock(program.block);
  os << "  seed=" << program.seed << " index=" << program.index << " params=[";
  for (size_t i = 0; i < program.paramValues.size(); ++i)
    os << (i ? "," : "") << program.paramValues[i];
  os << "]\n";
  return os.str();
}

}  // namespace emm::testgen
