// A deliberately broken tiling stage, for harness self-tests.
//
// The differential subsystem's own acceptance test is "would it catch a
// real miscompile?". PlantedTilerBugPass re-introduces a classic tiler
// defect into the produced unit: the first pure copy loop (a For whose
// subtree moves data but calls no statements) gets an off-by-one upper
// bound, so the last row of a move-in or move-out transfer is silently
// skipped — exactly the class of bug the Section-4.2 copy generation could
// regress into. The corruption is planted by a wrapper around the final
// (codegen) pass, after the genuine stage has run: corrupting the unit any
// earlier makes later passes re-analyze a broken AST and abort on internal
// checks, which is a crash, not the silent wrong answer a real copy-loop
// regression produces. Installed via Compiler::replacePass, which also (by
// design) bypasses the plan caches, so planted results never pollute a
// shared tier.
//
// tests/testgen_test.cpp asserts that a sweep with this pass planted finds
// a divergence and that the minimizer shrinks it to <= 3 statements.
#pragma once

#include "driver/pass.h"

namespace emm {
class Compiler;
}

namespace emm::testgen {

class PlantedTilerBugPass : public Pass {
public:
  PlantedTilerBugPass() : Pass("codegen") {}
  void run(CompileState& state) override;

  /// True when the last run() actually corrupted a copy loop (programs that
  /// fall back before tiling have nothing to corrupt).
  bool corrupted() const { return corrupted_; }

private:
  bool corrupted_ = false;
};

/// DiffOptions::configureCompiler hook installing the planted bug.
void plantTilerBug(Compiler& compiler);

}  // namespace emm::testgen
