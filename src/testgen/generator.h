// Random affine-program generator for differential testing.
//
// ProgramGenerator produces structurally diverse, always-executable
// ProgramBlocks straight in the compiler's own IR: perfect and imperfect
// loop nests of 1-3 statements, constant or parametric rectangular bounds,
// and stencil / matmul / reduction / pointwise-shaped access patterns with
// a controlled probability of cross-statement dependences. Every program
// satisfies ProgramBlock::validate() and keeps all accesses inside the
// declared array extents (extents are derived from the generated access
// ranges), so the interpreter oracle can execute any of them without
// tripping bounds checks — a generated program that crashes or diverges is
// always a finding about the pipeline, never about the generator.
//
// Determinism contract: generate(index) is a pure function of (options,
// index). Same seed, same index => byte-identical serializeProgramBlock
// encoding and identical paramValues, on any host. This is what makes
// `emmfuzz --seed=N` replayable and .emmrepro files meaningful.
#pragma once

#include "ir/program.h"
#include "testgen/rng.h"

namespace emm::testgen {

/// Tunable envelope for the generator. Defaults produce small programs
/// (domains of a few hundred points) that compile and interpret in
/// milliseconds — sized for thousand-program sweeps, not single showcases.
struct GeneratorOptions {
  u64 seed = 1;
  int minStatements = 1;
  int maxStatements = 3;
  int maxDim = 3;        ///< max loop depth per statement
  int maxArrays = 3;     ///< global array budget
  i64 minTrip = 4;       ///< min iterations per loop
  i64 maxTrip = 16;      ///< max iterations per loop
  int maxReads = 3;      ///< max read accesses per statement (besides self-read)
  int parametricPercent = 50;  ///< chance a program's bounds use a shared parameter N
  int crossReadPercent = 40;   ///< chance a read targets another stmt's output
  int accumulatePercent = 30;  ///< chance a statement reads its own write location
};

/// One generated program: the block plus the concrete parameter binding its
/// parametric bounds were sized with. Self-contained — minimized reproducers
/// are not regenerable from a seed, so the pair is what gets serialized.
struct GeneratedProgram {
  ProgramBlock block;
  IntVec paramValues;  ///< one per block.paramNames entry
  u64 seed = 0;        ///< generator seed (provenance only)
  u64 index = 0;       ///< program index within the seed's stream
};

class ProgramGenerator {
public:
  explicit ProgramGenerator(GeneratorOptions options = {}) : options_(options) {}

  const GeneratorOptions& options() const { return options_; }

  /// Builds program `index` of this generator's stream. Deterministic; the
  /// returned block is validated.
  GeneratedProgram generate(u64 index) const;

private:
  GeneratorOptions options_;
};

/// Human-readable rendering of a generated program (loops, accesses, rhs,
/// schedule) for divergence reports and .emmrepro dumps.
std::string describeProgram(const GeneratedProgram& program);

}  // namespace emm::testgen
