// Deterministic PRNG for the differential test generator.
//
// The generator's whole value rests on replayability: `emmfuzz --seed=N`
// must produce byte-identical programs on every host and build, so the
// subsystem owns its own generator instead of std::mt19937 + distributions
// (whose distribution algorithms are implementation-defined). SplitMix64 is
// tiny, fast, passes BigCrush, and — critically — is specified entirely in
// terms of u64 arithmetic, so two builds can never disagree on a stream.
#pragma once

#include <cstdint>
#include <vector>

#include "support/checked_int.h"

namespace emm::testgen {

using u64 = std::uint64_t;

/// SplitMix64 stream. Every draw is a fixed function of the 64-bit state.
class Rng {
public:
  explicit Rng(u64 seed) : state_(seed) {}

  /// Next raw 64-bit draw.
  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  i64 range(i64 lo, i64 hi) {
    const u64 span = static_cast<u64>(hi - lo) + 1;
    return lo + static_cast<i64>(next() % span);
  }

  /// True with probability `percent` / 100.
  bool chance(int percent) { return range(0, 99) < percent; }

  /// Uniform pick from a non-empty candidate list.
  template <typename T>
  const T& pick(const std::vector<T>& candidates) {
    return candidates[static_cast<size_t>(range(0, static_cast<i64>(candidates.size()) - 1))];
  }

private:
  u64 state_;
};

/// Mixes a base seed with a program index into an independent stream seed,
/// so program k of seed s never shares a prefix with program k+1.
inline u64 mixSeed(u64 seed, u64 index) {
  u64 z = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

}  // namespace emm::testgen
