#include "testgen/diff_runner.h"

#include <chrono>
#include <sstream>

#include "driver/backend.h"
#include "ir/interp.h"
#include "service/client.h"
#include "support/serialize.h"
#include "testgen/minimize.h"

namespace emm::testgen {

namespace {

/// Parameter binding for interpreting a compiled unit: the tiled kernel's
/// block appends tile-origin parameters after the source parameters; they
/// are bound by the tile loops at run time, so their slots are zero-filled
/// (the idiom every oracle-comparison test in tests/ uses).
IntVec unitParams(const CompileResult& r, const IntVec& paramValues) {
  IntVec ext = paramValues;
  if (r.kernel.has_value() && r.kernel->analysis.tileBlock != nullptr)
    ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);
  return ext;
}

DiffResult divergence(DiffResult base, const std::string& check, const std::string& detail) {
  base.ok = false;
  base.failedCheck = check;
  base.detail = detail;
  return base;
}

std::string joinTile(const std::vector<i64>& t) {
  std::ostringstream os;
  for (size_t i = 0; i < t.size(); ++i) os << (i ? "," : "") << t[i];
  return os.str();
}

}  // namespace

DiffResult DiffRunner::run(const GeneratedProgram& program) const {
  const DiffOptions& o = options_;
  DiffResult out;

  // Oracle: the original schedule, interpreted.
  ArrayStore want(program.block.arrays);
  want.fillAllPattern(o.fillSeed);
  executeReference(program.block, program.paramValues, want);

  auto makeCompiler = [&]() {
    Compiler c(program.block);
    c.options(o.baseOptions);
    c.parameters(program.paramValues);
    if (o.configureCompiler) o.configureCompiler(c);
    return c;
  };

  Compiler compiler = makeCompiler();
  CompileResult r;
  try {
    r = compiler.compile();
  } catch (const std::exception& e) {
    return divergence(out, "pipeline", std::string("compile() threw: ") + e.what());
  }

  if (!r.ok) {
    // A rejected program must explain itself; a silent failure is a bug.
    if (r.firstError().empty())
      return divergence(out, "pipeline", "pipeline failed with no error diagnostic");
    out.fellBack = true;
    return out;
  }
  const CodeUnit* unit = r.unit();
  if (unit == nullptr) {
    // Clean fallback (e.g. inter-block sync needed): ok, but nothing to run.
    out.fellBack = true;
    return out;
  }
  out.compiled = true;

  if (o.checkPipeline) {
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unit, unitParams(r, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "pipeline", std::string("unit execution threw: ") + e.what());
    }
    const double diff = ArrayStore::maxAbsDiff(got, want);
    if (diff != 0.0)
      return divergence(out, "pipeline",
                        "transformed unit diverges from oracle, maxAbsDiff=" + std::to_string(diff));
  }

  if (o.checkParametric) {
    Compiler c2 = makeCompiler();
    c2.opts().parametricTileAnalysis = !o.baseOptions.parametricTileAnalysis;
    CompileResult r2;
    try {
      r2 = c2.compile();
    } catch (const std::exception& e) {
      return divergence(out, "parametric", std::string("toggled compile threw: ") + e.what());
    }
    if (r2.ok != r.ok)
      return divergence(out, "parametric", "parametric toggle flips the compile verdict");
    if (r2.search.subTile != r.search.subTile)
      return divergence(out, "parametric",
                        "tile choice differs: concrete [" + joinTile(r2.search.subTile) +
                            "] vs parametric [" + joinTile(r.search.subTile) + "]");
    if (r2.artifact != r.artifact)
      return divergence(out, "parametric", "emitted artifact differs across the toggle");
  }

  if (o.checkSerialize) {
    const std::string bytes = serializeCompileResult(r);
    CompileResult r3;
    try {
      r3 = deserializeCompileResult(bytes);
    } catch (const std::exception& e) {
      return divergence(out, "serialize", std::string("round trip rejected own bytes: ") + e.what());
    }
    if (serializeCompileResult(r3) != bytes)
      return divergence(out, "serialize", "re-serialization is not a byte fixed point");
    const CodeUnit* unit3 = r3.unit();
    if (unit3 == nullptr)
      return divergence(out, "serialize", "deserialized result lost its code unit");
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unit3, unitParams(r3, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "serialize", std::string("deserialized unit threw: ") + e.what());
    }
    if (ArrayStore::maxAbsDiff(got, want) != 0.0)
      return divergence(out, "serialize", "deserialized unit diverges from oracle");
    // Re-emit: the deserialized unit must render to the same target text as
    // the original one under identical options.
    const Backend* backend = BackendRegistry::global().lookup(o.baseOptions.backendName);
    if (backend != nullptr) {
      CompileOptions eo = o.baseOptions;
      eo.paramValues = program.paramValues;
      if (backend->emit(*unit3, eo) != backend->emit(*unit, eo))
        return divergence(out, "serialize", "re-emitted source differs after round trip");
    }
  }

  if (o.checkWire && !o.wireSocket.empty()) {
    svc::CompileRequest req;
    req.block = program.block;
    req.options = o.baseOptions;
    req.options.paramValues = program.paramValues;
    svc::WireCompileReply reply;
    try {
      svc::ServiceClient client(o.wireSocket);
      reply = client.compile(std::move(req));
    } catch (const std::exception& e) {
      return divergence(out, "wire", std::string("service compile failed: ") + e.what());
    }
    if (!reply.result.ok)
      return divergence(out, "wire", "server rejected a locally compilable program: " +
                                         reply.result.firstError());
    if (reply.result.artifact != r.artifact)
      return divergence(out, "wire", "served artifact differs from the local compile");
    const CodeUnit* unitW = reply.result.unit();
    if (unitW == nullptr) return divergence(out, "wire", "served result lost its code unit");
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unitW, unitParams(reply.result, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "wire", std::string("served unit threw: ") + e.what());
    }
    if (ArrayStore::maxAbsDiff(got, want) != 0.0)
      return divergence(out, "wire", "served unit diverges from oracle");
  }

  return out;
}

SweepStats runDifferentialSweep(const SweepOptions& options) {
  ProgramGenerator generator(options.gen);
  DiffRunner runner(options.diff);
  SweepStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < options.programs; ++i) {
    if (options.timeBudgetSeconds > 0) {
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.timeBudgetSeconds) break;
    }
    GeneratedProgram program = generator.generate(i);
    DiffResult result = runner.run(program);
    ++stats.programs;
    if (result.compiled) ++stats.compiled;
    if (result.fellBack) ++stats.fallbacks;
    if (result.ok) continue;
    ++stats.divergences;
    SweepFinding finding{program, program, result};
    if (options.minimize) {
      MinimizeResult shrunk = minimizeProgram(
          program, [&](const GeneratedProgram& candidate) { return !runner.run(candidate).ok; });
      finding.minimized = std::move(shrunk.program);
      finding.result = runner.run(finding.minimized);
      if (finding.result.ok) finding.result = result;  // shrink raced itself; keep original
    }
    if (options.onFinding) options.onFinding(finding);
  }
  return stats;
}

}  // namespace emm::testgen
