#include "testgen/diff_runner.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "driver/backend.h"
#include "driver/plan_cache.h"
#include "ir/interp.h"
#include "poly/enumerate.h"
#include "service/client.h"
#include "support/serialize.h"
#include "testgen/minimize.h"

namespace emm::testgen {

namespace {

/// Parameter binding for interpreting a compiled unit: the tiled kernel's
/// block appends tile-origin parameters after the source parameters; they
/// are bound by the tile loops at run time, so their slots are zero-filled
/// (the idiom every oracle-comparison test in tests/ uses).
IntVec unitParams(const CompileResult& r, const IntVec& paramValues) {
  IntVec ext = paramValues;
  if (r.kernel.has_value() && r.kernel->analysis.tileBlock != nullptr)
    ext.resize(r.kernel->analysis.tileBlock->paramNames.size(), 0);
  return ext;
}

DiffResult divergence(DiffResult base, const std::string& check, const std::string& detail) {
  base.ok = false;
  base.failedCheck = check;
  base.detail = detail;
  return base;
}

std::string joinTile(const std::vector<i64>& t) {
  std::ostringstream os;
  for (size_t i = 0; i < t.size(); ++i) os << (i ? "," : "") << t[i];
  return os.str();
}

/// The block re-extented for a different parameter binding: every array
/// dimension gets the exact max index + 1 over the scaled domains (the same
/// enumeration the oracle walks), so the probe stays inside ArrayStore
/// bounds by construction — for upscales AND downscales. The binder swaps
/// these extents into the bound result, so stride consumers see them too.
ProgramBlock scaleExtents(const ProgramBlock& block, const IntVec& scaled) {
  ProgramBlock out = block;
  for (ArrayDecl& a : out.arrays) std::fill(a.extents.begin(), a.extents.end(), i64(1));
  for (const Statement& st : out.statements) {
    forEachPoint(st.domain, scaled, [&](const IntVec& iter) {
      IntVec hom = iter;
      hom.insert(hom.end(), scaled.begin(), scaled.end());
      hom.push_back(1);
      for (const Access& acc : st.accesses) {
        const IntVec idx = acc.fn.apply(hom);
        ArrayDecl& a = out.arrays[acc.arrayId];
        for (size_t d = 0; d < idx.size(); ++d)
          a.extents[d] = std::max(a.extents[d], idx[d] + 1);
      }
    });
  }
  return out;
}

}  // namespace

DiffResult DiffRunner::run(const GeneratedProgram& program) const {
  const DiffOptions& o = options_;
  DiffResult out;

  // Oracle: the original schedule, interpreted.
  ArrayStore want(program.block.arrays);
  want.fillAllPattern(o.fillSeed);
  executeReference(program.block, program.paramValues, want);

  auto makeCompiler = [&]() {
    Compiler c(program.block);
    c.options(o.baseOptions);
    c.parameters(program.paramValues);
    if (o.configureCompiler) o.configureCompiler(c);
    return c;
  };

  Compiler compiler = makeCompiler();
  CompileResult r;
  try {
    r = compiler.compile();
  } catch (const std::exception& e) {
    return divergence(out, "pipeline", std::string("compile() threw: ") + e.what());
  }

  if (!r.ok) {
    // A rejected program must explain itself; a silent failure is a bug.
    if (r.firstError().empty())
      return divergence(out, "pipeline", "pipeline failed with no error diagnostic");
    out.fellBack = true;
    return out;
  }
  const CodeUnit* unit = r.unit();
  if (unit == nullptr) {
    // Clean fallback (e.g. inter-block sync needed): ok, but nothing to run.
    out.fellBack = true;
    return out;
  }
  out.compiled = true;

  if (o.checkPipeline) {
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unit, unitParams(r, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "pipeline", std::string("unit execution threw: ") + e.what());
    }
    const double diff = ArrayStore::maxAbsDiff(got, want);
    if (diff != 0.0)
      return divergence(out, "pipeline",
                        "transformed unit diverges from oracle, maxAbsDiff=" + std::to_string(diff));
  }

  if (o.checkParametric) {
    Compiler c2 = makeCompiler();
    c2.opts().parametricTileAnalysis = !o.baseOptions.parametricTileAnalysis;
    CompileResult r2;
    try {
      r2 = c2.compile();
    } catch (const std::exception& e) {
      return divergence(out, "parametric", std::string("toggled compile threw: ") + e.what());
    }
    if (r2.ok != r.ok)
      return divergence(out, "parametric", "parametric toggle flips the compile verdict");
    if (r2.search.subTile != r.search.subTile)
      return divergence(out, "parametric",
                        "tile choice differs: concrete [" + joinTile(r2.search.subTile) +
                            "] vs parametric [" + joinTile(r.search.subTile) + "]");
    if (r2.artifact != r.artifact)
      return divergence(out, "parametric", "emitted artifact differs across the toggle");
  }

  if (o.checkSerialize) {
    const std::string bytes = serializeCompileResult(r);
    CompileResult r3;
    try {
      r3 = deserializeCompileResult(bytes);
    } catch (const std::exception& e) {
      return divergence(out, "serialize", std::string("round trip rejected own bytes: ") + e.what());
    }
    if (serializeCompileResult(r3) != bytes)
      return divergence(out, "serialize", "re-serialization is not a byte fixed point");
    const CodeUnit* unit3 = r3.unit();
    if (unit3 == nullptr)
      return divergence(out, "serialize", "deserialized result lost its code unit");
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unit3, unitParams(r3, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "serialize", std::string("deserialized unit threw: ") + e.what());
    }
    if (ArrayStore::maxAbsDiff(got, want) != 0.0)
      return divergence(out, "serialize", "deserialized unit diverges from oracle");
    // Re-emit: the deserialized unit must render to the same target text as
    // the original one under identical options.
    const Backend* backend = BackendRegistry::global().lookup(o.baseOptions.backendName);
    if (backend != nullptr) {
      CompileOptions eo = o.baseOptions;
      eo.paramValues = program.paramValues;
      if (backend->emit(*unit3, eo) != backend->emit(*unit, eo))
        return divergence(out, "serialize", "re-emitted source differs after round trip");
    }
  }

  if (o.checkBind && !program.block.paramNames.empty()) {
    // Family binding: a cached compile at the generated size builds the
    // size-generic family record; scaled sizes (half, 2x, 3x) then request
    // the same family. A size the binder accepts must match the oracle at
    // ITS size element-exactly with the bound (never re-emitted) artifact;
    // a size the guards or the argmin re-certification reject must come
    // back as a clean full pipeline whose unit still matches the oracle —
    // a rejection is never allowed to become a wrong answer.
    PlanCache cache;
    Compiler seed = makeCompiler();
    seed.cache(&cache);
    CompileResult rs;
    try {
      rs = seed.compile();
    } catch (const std::exception& e) {
      return divergence(out, "bind", std::string("cached seed compile threw: ") + e.what());
    }
    if (rs.ok && rs.unit() != nullptr) {
      for (int probe = 0; probe < 3; ++probe) {
        IntVec scaled = program.paramValues;
        for (i64& p : scaled) p = probe == 0 ? std::max<i64>(1, p / 2) : p * (probe + 1);
        if (scaled == program.paramValues) continue;
        const ProgramBlock probeBlock = scaleExtents(program.block, scaled);
        Compiler cb(probeBlock);
        cb.options(o.baseOptions);
        cb.parameters(scaled);
        if (o.configureCompiler) o.configureCompiler(cb);
        cb.cache(&cache);
        CompileResult rb;
        try {
          rb = cb.compile();
        } catch (const std::exception& e) {
          return divergence(out, "bind", std::string("scaled compile threw: ") + e.what());
        }
        if (!rb.ok) {
          if (rb.firstError().empty())
            return divergence(out, "bind", "scaled compile failed with no error diagnostic");
          continue;  // clean rejection at this size
        }
        const CodeUnit* unitB = rb.unit();
        if (unitB == nullptr) continue;  // clean fallback at this size
        if (rb.artifactBound && !rb.familyHit)
          return divergence(out, "bind", "artifact bound without a family hit");
        if (rb.artifactBound) ++out.boundSizes;
        ArrayStore wantS(probeBlock.arrays);
        wantS.fillAllPattern(o.fillSeed);
        executeReference(probeBlock, scaled, wantS);
        ArrayStore gotS(probeBlock.arrays);
        gotS.fillAllPattern(o.fillSeed);
        try {
          executeCodeUnit(*unitB, unitParams(rb, scaled), gotS);
        } catch (const std::exception& e) {
          return divergence(out, "bind",
                            std::string(rb.artifactBound ? "bound" : "re-emitted") +
                                " unit threw at scaled size: " + e.what());
        }
        const double diffS = ArrayStore::maxAbsDiff(gotS, wantS);
        if (diffS != 0.0)
          return divergence(out, "bind",
                            std::string(rb.artifactBound ? "bound" : "re-emitted") +
                                " unit diverges from oracle at scaled size, maxAbsDiff=" +
                                std::to_string(diffS));
      }
    }
  }

  if (o.checkWire && !o.wireSocket.empty()) {
    svc::CompileRequest req;
    req.block = program.block;
    req.options = o.baseOptions;
    req.options.paramValues = program.paramValues;
    svc::WireCompileReply reply;
    try {
      svc::ServiceClient client(o.wireSocket);
      reply = client.compile(std::move(req));
    } catch (const std::exception& e) {
      return divergence(out, "wire", std::string("service compile failed: ") + e.what());
    }
    if (!reply.result.ok)
      return divergence(out, "wire", "server rejected a locally compilable program: " +
                                         reply.result.firstError());
    if (reply.result.artifact != r.artifact)
      return divergence(out, "wire", "served artifact differs from the local compile");
    const CodeUnit* unitW = reply.result.unit();
    if (unitW == nullptr) return divergence(out, "wire", "served result lost its code unit");
    ArrayStore got(program.block.arrays);
    got.fillAllPattern(o.fillSeed);
    try {
      executeCodeUnit(*unitW, unitParams(reply.result, program.paramValues), got);
    } catch (const std::exception& e) {
      return divergence(out, "wire", std::string("served unit threw: ") + e.what());
    }
    if (ArrayStore::maxAbsDiff(got, want) != 0.0)
      return divergence(out, "wire", "served unit diverges from oracle");
  }

  return out;
}

SweepStats runDifferentialSweep(const SweepOptions& options) {
  ProgramGenerator generator(options.gen);
  DiffRunner runner(options.diff);
  SweepStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < options.programs; ++i) {
    if (options.timeBudgetSeconds > 0) {
      const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
      if (elapsed.count() > options.timeBudgetSeconds) break;
    }
    GeneratedProgram program = generator.generate(i);
    DiffResult result = runner.run(program);
    ++stats.programs;
    if (result.compiled) ++stats.compiled;
    if (result.fellBack) ++stats.fallbacks;
    stats.boundSizes += result.boundSizes;
    if (result.ok) continue;
    ++stats.divergences;
    SweepFinding finding{program, program, result};
    if (options.minimize) {
      MinimizeResult shrunk = minimizeProgram(
          program, [&](const GeneratedProgram& candidate) { return !runner.run(candidate).ok; });
      finding.minimized = std::move(shrunk.program);
      finding.result = runner.run(finding.minimized);
      if (finding.result.ok) finding.result = result;  // shrink raced itself; keep original
    }
    if (options.onFinding) options.onFinding(finding);
  }
  return stats;
}

}  // namespace emm::testgen
