// .emmrepro: self-contained reproducer files for fuzzer findings.
//
// A divergence found by a sweep is dumped as one file holding the
// (minimized) program itself — not just a seed, since minimized programs
// are not regenerable — plus the failed check and a human-readable detail
// string. `emmfuzz --replay=FILE` loads it and re-runs the differential
// harness, so a finding reported from a nightly run reproduces locally with
// zero setup.
//
// Format (all via support/serialize's little-endian ByteWriter):
//   magic "EMMREPRO"            8 bytes
//   u32   kReproFormatVersion
//   u64   serializeSchemaFingerprint()   (reject cross-schema files cleanly)
//   u64   payload digest (digestBytes)
//   str   payload:
//     u64 seed, u64 index, paramValues (count + i64 each),
//     str serializeProgramBlock(block), str failedCheck, str detail
//
// The reader is hostile-input safe: every malformation — bad magic, alien
// version or schema, digest mismatch, truncation, trailing bytes, a block
// the IR validator rejects, a parameter-count mismatch — throws
// SerializeError, never crashes or aborts.
#pragma once

#include <string>
#include <string_view>

#include "support/serialize.h"
#include "testgen/generator.h"

namespace emm::testgen {

inline constexpr u32 kReproFormatVersion = 1;

/// One reproducer: the failing (usually minimized) program and what failed.
struct Repro {
  GeneratedProgram program;
  std::string failedCheck;
  std::string detail;
};

std::string serializeRepro(const Repro& repro);
/// Throws SerializeError on any malformation.
Repro deserializeRepro(std::string_view bytes);

/// File helpers. Writing throws ApiError on I/O failure; reading throws
/// ApiError when the file is unreadable and SerializeError when its
/// contents are malformed.
void writeReproFile(const std::string& path, const Repro& repro);
Repro readReproFile(const std::string& path);

}  // namespace emm::testgen
