// Differential oracle harness: one generated program, every pipeline view.
//
// DiffRunner executes the untransformed interpreter oracle
// (executeReference) and compares element-exact array states against every
// view of the compiled program:
//
//   pipeline   — the transformed + tiled CodeUnit, interpreted
//   parametric — a second compile with parametric tile analysis disabled;
//                tile choice and emitted artifact must agree byte for byte
//   serialize  — serialize -> deserialize -> re-serialize must be a fixed
//                point, the deserialized unit must execute identically,
//                and re-emitting it through the backend must reproduce the
//                artifact text
//   wire       — the same block compiled through a live ServiceServer
//                socket; the served unit must execute identically and the
//                artifact must match the local compile
//   bind       — the program's family artifact (size-generic record built
//                by a cached compile at the generated size) requested at
//                scaled sizes (half, 2x, 3x, with array extents recomputed
//                exactly for each); a size the binder accepts must match
//                the oracle at ITS size element-exactly, and sizes the
//                guards or the argmin re-certification reject must fall
//                back to a clean full pipeline — never a wrong answer
//
// Element-exact comparison is sound here: a legal transformation preserves
// each element's read/write operand sequence, so results are bit-identical
// — any nonzero difference is a real miscompile, not noise.
//
// Failure taxonomy: a pipeline that rejects a program MUST do so through an
// error diagnostic (clean fallback — counted, not failed). A wrong answer,
// a thrown exception, an ok-result with no diagnostic trail for a missing
// unit, or a serialize mismatch is a divergence. EMM_CHECK aborts are left
// to crash the process: that is the fuzzer finding a real invariant
// violation, and the harness must not mask it.
#pragma once

#include <functional>
#include <string>

#include "driver/compiler.h"
#include "testgen/generator.h"

namespace emm::testgen {

/// What to check and how to compile. The runner owns no policy beyond the
/// defaults: callers (emmfuzz, tests) decide which views are in play.
struct DiffOptions {
  bool checkPipeline = true;
  bool checkParametric = true;
  bool checkSerialize = true;
  bool checkBind = true;
  bool checkWire = false;
  std::string wireSocket;  ///< required when checkWire
  unsigned fillSeed = 5;   ///< ArrayStore fill pattern seed
  /// Base option set for every compile; paramValues are overwritten per
  /// program. Defaults keep the standard pipeline and the "c" backend, but
  /// shrink innerProcs from its GPU-sized default (32): the tile searcher
  /// rejects any tile whose volume is below innerProcs, which would rule
  /// out every generated program with small trip counts and make the sweep
  /// an expensive no-op.
  CompileOptions baseOptions;

  DiffOptions() { baseOptions.innerProcs = 4; }
  /// Hook applied to every constructed Compiler — the seam for planting
  /// bugs (replacePass) or attaching caches in tests.
  std::function<void(Compiler&)> configureCompiler;
};

/// Outcome of one differential run.
struct DiffResult {
  bool ok = true;         ///< no divergence (fallbacks are ok)
  bool compiled = false;  ///< pipeline produced an executable unit
  bool fellBack = false;  ///< clean rejection (error diagnostic, or no unit)
  int boundSizes = 0;     ///< bind view: scaled sizes served by a record bind
  std::string failedCheck;  ///< "pipeline" | "parametric" | "serialize" | "bind" | "wire"
  std::string detail;       ///< human-readable description of the divergence
};

class DiffRunner {
public:
  explicit DiffRunner(DiffOptions options = {}) : options_(options) {}

  const DiffOptions& options() const { return options_; }

  /// Runs every enabled check on one program.
  DiffResult run(const GeneratedProgram& program) const;

private:
  DiffOptions options_;
};

/// Aggregate counters of a sweep.
struct SweepStats {
  i64 programs = 0;
  i64 compiled = 0;
  i64 fallbacks = 0;
  i64 divergences = 0;
  i64 boundSizes = 0;  ///< total sizes the bind view served via record binds
};

/// One divergence surfaced by a sweep, with its minimized form (equal to
/// `program` when minimization is disabled or failed to shrink).
struct SweepFinding {
  GeneratedProgram program;
  GeneratedProgram minimized;
  DiffResult result;
};

struct SweepOptions {
  GeneratorOptions gen;
  DiffOptions diff;
  u64 programs = 200;
  double timeBudgetSeconds = 0;  ///< 0 = no budget; stops early when exceeded
  bool minimize = true;
  /// Called for every divergence (after minimization when enabled).
  std::function<void(const SweepFinding&)> onFinding;
};

/// Generates `programs` programs and differentially checks each one.
SweepStats runDifferentialSweep(const SweepOptions& options);

}  // namespace emm::testgen
