#include "testgen/minimize.h"

#include <algorithm>
#include <map>

#include "support/diagnostics.h"

namespace emm::testgen {

namespace {

/// Concrete [lo, hi] of every loop of a statement at the program's
/// parameter binding (rectangular domains; exactly what the generator and
/// its reductions produce).
void concreteBounds(const Statement& st, const IntVec& paramValues, IntVec& lo, IntVec& hi) {
  lo.clear();
  hi.clear();
  for (int j = 0; j < st.dim(); ++j) {
    const DimBounds b = st.domain.paramBounds(j);
    lo.push_back(b.evalLower(paramValues));
    hi.push_back(b.evalUpper(paramValues));
  }
}

/// Rewrites a body expression after read access `removed` was dropped:
/// loads of it become the constant 1, later load indices shift down.
ExprPtr remapLoads(const ExprPtr& e, int removed) {
  if (e == nullptr) return nullptr;
  switch (e->kind()) {
    case Expr::Kind::Const:
      return e;
    case Expr::Kind::Load: {
      const int idx = e->accessIndex();
      if (idx == removed) return Expr::constant(1.0);
      return idx > removed ? Expr::load(idx - 1) : e;
    }
    case Expr::Kind::Abs:
      return Expr::abs(remapLoads(e->lhs(), removed));
    case Expr::Kind::Add:
      return Expr::add(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
    case Expr::Kind::Sub:
      return Expr::sub(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
    case Expr::Kind::Mul:
      return Expr::mul(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
    case Expr::Kind::Div:
      return Expr::div(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
    case Expr::Kind::Min:
      return Expr::min(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
    case Expr::Kind::Max:
      return Expr::max(remapLoads(e->lhs(), removed), remapLoads(e->rhs(), removed));
  }
  return e;
}

/// True when parameter `pi` appears with a nonzero coefficient anywhere.
bool paramUsed(const ProgramBlock& b, int pi) {
  for (const Statement& st : b.statements) {
    const int col = st.dim() + pi;
    const auto anyRow = [&](const IntMat& m) {
      for (int r = 0; r < m.rows(); ++r)
        if (m.at(r, col) != 0) return true;
      return false;
    };
    if (anyRow(st.domain.equalities()) || anyRow(st.domain.inequalities())) return true;
    if (anyRow(st.schedule)) return true;
    for (const Access& a : st.accesses)
      if (anyRow(a.fn)) return true;
  }
  return false;
}

IntMat withoutColumn(const IntMat& m, int col) {
  IntMat out(0, m.cols() - 1);
  for (int r = 0; r < m.rows(); ++r) {
    IntVec row = m.row(r);
    row.erase(row.begin() + col);
    out.appendRow(row);
  }
  return out;
}

/// Drops parameter `pi` (must be unused) from every matrix and the name /
/// value lists.
void eraseParam(GeneratedProgram& p, int pi) {
  ProgramBlock& b = p.block;
  const int np = b.nparam();
  for (Statement& st : b.statements) {
    const int col = st.dim() + pi;
    Polyhedron domain(st.dim(), np - 1);
    const IntMat eqs = withoutColumn(st.domain.equalities(), col);
    for (int r = 0; r < eqs.rows(); ++r) domain.addEquality(eqs.row(r));
    const IntMat ineqs = withoutColumn(st.domain.inequalities(), col);
    for (int r = 0; r < ineqs.rows(); ++r) domain.addInequality(ineqs.row(r));
    st.domain = std::move(domain);
    st.schedule = withoutColumn(st.schedule, col);
    for (Access& a : st.accesses) a.fn = withoutColumn(a.fn, col);
  }
  b.paramNames.erase(b.paramNames.begin() + pi);
  p.paramValues.erase(p.paramValues.begin() + pi);
}

void pruneUnusedParams(GeneratedProgram& p) {
  for (int pi = p.block.nparam() - 1; pi >= 0; --pi)
    if (!paramUsed(p.block, pi)) eraseParam(p, pi);
}

/// Drops statement `s`, pruning arrays and parameters nothing references
/// anymore (array ids are remapped).
GeneratedProgram dropStatement(const GeneratedProgram& p, size_t s) {
  GeneratedProgram out = p;
  out.block.statements.erase(out.block.statements.begin() + static_cast<long>(s));
  std::vector<bool> used(out.block.arrays.size(), false);
  for (const Statement& st : out.block.statements)
    for (const Access& a : st.accesses) used[static_cast<size_t>(a.arrayId)] = true;
  std::vector<int> remap(out.block.arrays.size(), -1);
  std::vector<ArrayDecl> kept;
  for (size_t a = 0; a < used.size(); ++a) {
    if (!used[a]) continue;
    remap[a] = static_cast<int>(kept.size());
    kept.push_back(out.block.arrays[a]);
  }
  out.block.arrays = std::move(kept);
  for (Statement& st : out.block.statements)
    for (Access& a : st.accesses) a.arrayId = remap[static_cast<size_t>(a.arrayId)];
  pruneUnusedParams(out);
  return out;
}

/// Drops read access `k` of statement `s`, rewriting the body.
GeneratedProgram dropRead(const GeneratedProgram& p, size_t s, size_t k) {
  GeneratedProgram out = p;
  Statement& st = out.block.statements[s];
  st.accesses.erase(st.accesses.begin() + static_cast<long>(k));
  st.rhs = remapLoads(st.rhs, static_cast<int>(k));
  if (st.writeAccess > static_cast<int>(k)) --st.writeAccess;
  return out;
}

}  // namespace

void recomputeExtents(GeneratedProgram& p) {
  ProgramBlock& b = p.block;
  std::vector<IntVec> lo(b.statements.size()), hi(b.statements.size());
  for (size_t s = 0; s < b.statements.size(); ++s)
    concreteBounds(b.statements[s], p.paramValues, lo[s], hi[s]);
  for (size_t a = 0; a < b.arrays.size(); ++a) {
    const int ndim = b.arrays[a].ndim();
    for (int d = 0; d < ndim; ++d) {
      i64 minIdx = 0, maxIdx = 0;
      bool seen = false;
      for (size_t s = 0; s < b.statements.size(); ++s) {
        for (const Access& acc : b.statements[s].accesses) {
          if (acc.arrayId != static_cast<int>(a)) continue;
          const IntVec fr = acc.fn.row(d);
          const int dim = b.statements[s].dim();
          i64 rlo = fr.back(), rhi = fr.back();
          for (int j = 0; j < dim; ++j) {
            if (fr[j] >= 0) {
              rlo += fr[j] * lo[s][j];
              rhi += fr[j] * hi[s][j];
            } else {
              rlo += fr[j] * hi[s][j];
              rhi += fr[j] * lo[s][j];
            }
          }
          for (int q = 0; q < b.nparam(); ++q) {
            rlo += fr[dim + q] * p.paramValues[q];
            rhi += fr[dim + q] * p.paramValues[q];
          }
          minIdx = seen ? std::min(minIdx, rlo) : rlo;
          maxIdx = seen ? std::max(maxIdx, rhi) : rhi;
          seen = true;
        }
      }
      const i64 shift = minIdx < 0 ? -minIdx : 0;
      if (shift > 0) {
        for (Statement& st : b.statements)
          for (Access& acc : st.accesses)
            if (acc.arrayId == static_cast<int>(a)) acc.fn.at(d, acc.fn.cols() - 1) += shift;
      }
      b.arrays[a].extents[d] = std::max<i64>(maxIdx + shift + 1, 1);
    }
  }
}

MinimizeResult minimizeProgram(const GeneratedProgram& failing,
                               const std::function<bool(const GeneratedProgram&)>& stillFails,
                               int maxAttempts) {
  MinimizeResult result{failing, 0, false};
  GeneratedProgram& best = result.program;

  // Accepts a candidate when it is still valid and still failing. Reductions
  // can produce blocks the IR rejects (e.g. an empty statement list); those
  // simply don't shrink.
  auto accept = [&](GeneratedProgram candidate) {
    if (result.attempts >= maxAttempts) return false;
    ++result.attempts;
    recomputeExtents(candidate);
    try {
      candidate.block.validate();
    } catch (const std::exception&) {
      return false;
    }
    if (!stillFails(candidate)) return false;
    best = std::move(candidate);
    result.changed = true;
    return true;
  };

  bool progressed = true;
  while (progressed && result.attempts < maxAttempts) {
    progressed = false;

    // 1. Whole statements — the biggest single reduction.
    for (size_t s = 0; s < best.block.statements.size() && best.block.statements.size() > 1;) {
      if (accept(dropStatement(best, s)))
        progressed = true;  // same index now names the next statement
      else
        ++s;
    }

    // 2. Read accesses.
    for (size_t s = 0; s < best.block.statements.size(); ++s) {
      for (size_t k = 0; k < best.block.statements[s].accesses.size();) {
        const Statement& st = best.block.statements[s];
        if (static_cast<int>(k) == st.writeAccess || st.accesses.size() <= 2) {
          ++k;
          continue;  // keep the write and at least one read
        }
        if (accept(dropRead(best, s, k)))
          progressed = true;
        else
          ++k;
      }
    }

    // 3. Body: collapse to a bare load of the first read.
    for (size_t s = 0; s < best.block.statements.size(); ++s) {
      const Statement& st = best.block.statements[s];
      int firstRead = -1;
      for (size_t k = 0; k < st.accesses.size(); ++k)
        if (static_cast<int>(k) != st.writeAccess) {
          firstRead = static_cast<int>(k);
          break;
        }
      if (firstRead < 0 || st.rhs == nullptr) continue;
      if (st.rhs->kind() == Expr::Kind::Load && st.rhs->accessIndex() == firstRead) continue;
      GeneratedProgram cand = best;
      cand.block.statements[s].rhs = Expr::load(firstRead);
      if (accept(std::move(cand))) progressed = true;
    }

    // 4. Parameters: halve toward the smallest still-iterating sizes.
    for (size_t q = 0; q < best.paramValues.size(); ++q) {
      const i64 v = best.paramValues[q];
      const i64 smaller = std::max<i64>(3, v / 2);
      if (smaller == v) continue;
      GeneratedProgram cand = best;
      cand.paramValues[q] = smaller;
      if (accept(std::move(cand))) progressed = true;
    }

    // 5. Loop ranges: halve constant-bounded loops with an extra upper row.
    for (size_t s = 0; s < best.block.statements.size(); ++s) {
      for (int j = 0; j < best.block.statements[s].dim(); ++j) {
        IntVec lo, hi;
        concreteBounds(best.block.statements[s], best.paramValues, lo, hi);
        if (hi[j] - lo[j] < 2) continue;
        GeneratedProgram cand = best;
        Statement& st = cand.block.statements[s];
        IntVec row(st.dim() + cand.block.nparam() + 1, 0);
        row[j] = -1;
        row.back() = lo[j] + (hi[j] - lo[j]) / 2;  // i_j <= midpoint
        st.domain.addInequality(row);
        if (accept(std::move(cand))) progressed = true;
      }
    }

    // 6. Stencil offsets: zero positive read-offset constants. No reference
    // into `best` may live across accept() — a successful accept move-assigns
    // the whole program — so every lookup re-indexes from scratch.
    for (size_t s = 0; s < best.block.statements.size(); ++s) {
      for (size_t k = 0; k < best.block.statements[s].accesses.size(); ++k) {
        if (static_cast<int>(k) == best.block.statements[s].writeAccess) continue;
        for (int d = 0; d < best.block.statements[s].accesses[k].fn.rows(); ++d) {
          {
            const IntMat& fn = best.block.statements[s].accesses[k].fn;
            if (fn.at(d, fn.cols() - 1) <= 0) continue;
          }
          GeneratedProgram cand = best;
          IntMat& fn = cand.block.statements[s].accesses[k].fn;
          fn.at(d, fn.cols() - 1) = 0;
          if (accept(std::move(cand))) progressed = true;
        }
      }
    }
  }
  return result;
}

}  // namespace emm::testgen
