// Delta-minimizer for failing generated programs.
//
// A raw fuzzer finding is rarely debuggable: three statements, a dozen
// accesses, parametric bounds. minimizeProgram() greedily applies
// semantics-preserving-in-shape reductions — drop a statement, drop a read,
// collapse the body to a single load, halve a parameter, halve a loop
// range, zero a stencil offset — re-running the caller's failure predicate
// after each one and keeping every candidate that still fails, until a
// fixpoint (or the attempt budget) is reached. Array extents are recomputed
// after every mutation, so every candidate stays interpretable (no
// out-of-bounds aborts introduced by the minimizer itself).
#pragma once

#include <functional>

#include "testgen/generator.h"

namespace emm::testgen {

struct MinimizeResult {
  GeneratedProgram program;
  int attempts = 0;  ///< predicate evaluations spent
  bool changed = false;
};

/// Shrinks `failing` while `stillFails` keeps returning true for the
/// candidate. The predicate must be deterministic; it is typically
/// `!runner.run(candidate).ok`.
MinimizeResult minimizeProgram(const GeneratedProgram& failing,
                               const std::function<bool(const GeneratedProgram&)>& stillFails,
                               int maxAttempts = 400);

/// Recomputes every array's extents (and lifts negative index minima with a
/// uniform per-dimension shift) from the program's current domains and
/// accesses. Exposed for the minimizer's own reductions and for tests that
/// hand-mutate generated programs.
void recomputeExtents(GeneratedProgram& program);

}  // namespace emm::testgen
