#include "testgen/planted_bug.h"

#include "driver/compiler.h"

namespace emm::testgen {

namespace {

struct SubtreeScan {
  bool hasCopy = false;
  bool hasCall = false;
};

SubtreeScan scan(const AstNode& node) {
  SubtreeScan s;
  if (node.kind == AstNode::Kind::Copy) s.hasCopy = true;
  if (node.kind == AstNode::Kind::Call) s.hasCall = true;
  for (const AstPtr& child : node.children) {
    const SubtreeScan c = scan(*child);
    s.hasCopy |= c.hasCopy;
    s.hasCall |= c.hasCall;
  }
  return s;
}

/// Pre-order search for the first For that only moves data (copies, no
/// calls); decrements its upper bound by exactly one iteration.
bool corruptFirstCopyLoop(AstNode& node) {
  if (node.kind == AstNode::Kind::For) {
    const SubtreeScan s = scan(node);
    if (s.hasCopy && !s.hasCall && !node.ub.parts.empty()) {
      for (AffExpr& part : node.ub.parts) part.cnst -= part.den;  // ub - 1
      return true;
    }
  }
  for (AstPtr& child : node.children)
    if (corruptFirstCopyLoop(*child)) return true;
  return false;
}

}  // namespace

void PlantedTilerBugPass::run(CompileState& state) {
  PassRegistry::standard().create("codegen")->run(state);
  corrupted_ = false;
  if (state.kernel.has_value()) corrupted_ = corruptFirstCopyLoop(*state.kernel->unit.root);
}

void plantTilerBug(Compiler& compiler) {
  compiler.replacePass("codegen", std::make_shared<PlantedTilerBugPass>());
}

}  // namespace emm::testgen
