#include "testgen/repro.h"

#include <fstream>
#include <sstream>

#include "support/diagnostics.h"

namespace emm::testgen {

namespace {

constexpr char kMagic[8] = {'E', 'M', 'M', 'R', 'E', 'P', 'R', 'O'};

}  // namespace

std::string serializeRepro(const Repro& repro) {
  ByteWriter payload;
  payload.u64v(repro.program.seed);
  payload.u64v(repro.program.index);
  payload.u64v(static_cast<u64>(repro.program.paramValues.size()));
  for (i64 v : repro.program.paramValues) payload.i64v(v);
  payload.str(serializeProgramBlock(repro.program.block));
  payload.str(repro.failedCheck);
  payload.str(repro.detail);
  const std::string body = payload.take();

  ByteWriter w;
  w.bytes(kMagic, sizeof(kMagic));
  w.u32v(kReproFormatVersion);
  w.u64v(serializeSchemaFingerprint());
  w.u64v(digestBytes(body));
  w.str(body);
  return w.take();
}

Repro deserializeRepro(std::string_view bytes) {
  ByteReader r(bytes);
  for (char expected : kMagic)
    if (static_cast<char>(r.u8()) != expected) throw SerializeError("bad .emmrepro magic");
  const u32 version = r.u32v();
  if (version != kReproFormatVersion)
    throw SerializeError("unsupported .emmrepro version " + std::to_string(version));
  const u64 schema = r.u64v();
  if (schema != serializeSchemaFingerprint())
    throw SerializeError(".emmrepro written by a different serialization schema");
  const u64 digest = r.u64v();
  const std::string body = r.str();
  r.expectEnd();
  if (digestBytes(body) != digest) throw SerializeError(".emmrepro payload digest mismatch");

  ByteReader p(body);
  Repro out;
  out.program.seed = p.u64v();
  out.program.index = p.u64v();
  const u64 nparams = p.count(8);
  for (u64 i = 0; i < nparams; ++i) out.program.paramValues.push_back(p.i64v());
  out.program.block = deserializeProgramBlock(p.str());
  out.failedCheck = p.str();
  out.detail = p.str();
  p.expectEnd();
  if (out.program.paramValues.size() != static_cast<size_t>(out.program.block.nparam()))
    throw SerializeError(".emmrepro parameter count does not match the block");
  return out;
}

void writeReproFile(const std::string& path, const Repro& repro) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  EMM_REQUIRE(f.good(), "cannot open " + path + " for writing");
  const std::string bytes = serializeRepro(repro);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.flush();
  EMM_REQUIRE(f.good(), "write failed for " + path);
}

Repro readReproFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EMM_REQUIRE(f.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return deserializeRepro(buf.str());
}

}  // namespace emm::testgen
