#include "linalg/matrix.h"

#include <algorithm>
#include <sstream>

namespace emm {

IntMat::IntMat(std::initializer_list<std::initializer_list<i64>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(size_t(rows_) * cols_);
  for (const auto& r : rows) {
    EMM_CHECK(static_cast<int>(r.size()) == cols_, "ragged initializer for IntMat");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

IntMat IntMat::identity(int n) {
  IntMat m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntVec IntMat::row(int r) const {
  EMM_CHECK(r >= 0 && r < rows_, "row index out of range");
  return IntVec(data_.begin() + size_t(r) * cols_, data_.begin() + size_t(r + 1) * cols_);
}

void IntMat::setRow(int r, const IntVec& v) {
  EMM_CHECK(r >= 0 && r < rows_, "row index out of range");
  EMM_CHECK(static_cast<int>(v.size()) == cols_, "row width mismatch");
  std::copy(v.begin(), v.end(), data_.begin() + size_t(r) * cols_);
}

void IntMat::appendRow(const IntVec& v) {
  if (rows_ == 0 && cols_ == 0) cols_ = static_cast<int>(v.size());
  EMM_CHECK(static_cast<int>(v.size()) == cols_, "row width mismatch");
  data_.insert(data_.end(), v.begin(), v.end());
  ++rows_;
}

void IntMat::removeRow(int r) {
  EMM_CHECK(r >= 0 && r < rows_, "row index out of range");
  data_.erase(data_.begin() + size_t(r) * cols_, data_.begin() + size_t(r + 1) * cols_);
  --rows_;
}

IntMat operator*(const IntMat& a, const IntMat& b) {
  EMM_CHECK(a.cols_ == b.rows_, "shape mismatch in matrix product");
  IntMat c(a.rows_, b.cols_);
  for (int i = 0; i < a.rows_; ++i)
    for (int k = 0; k < a.cols_; ++k) {
      i64 aik = a.at(i, k);
      if (aik == 0) continue;
      for (int j = 0; j < b.cols_; ++j)
        c.at(i, j) = narrow(static_cast<i128>(c.at(i, j)) + static_cast<i128>(aik) * b.at(k, j));
    }
  return c;
}

IntMat operator+(const IntMat& a, const IntMat& b) {
  EMM_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch in matrix sum");
  IntMat c(a.rows_, a.cols_);
  for (int i = 0; i < a.rows_; ++i)
    for (int j = 0; j < a.cols_; ++j) c.at(i, j) = addChecked(a.at(i, j), b.at(i, j));
  return c;
}

IntMat operator-(const IntMat& a, const IntMat& b) {
  EMM_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch in matrix difference");
  IntMat c(a.rows_, a.cols_);
  for (int i = 0; i < a.rows_; ++i)
    for (int j = 0; j < a.cols_; ++j) c.at(i, j) = subChecked(a.at(i, j), b.at(i, j));
  return c;
}

IntVec IntMat::apply(const IntVec& v) const {
  EMM_CHECK(static_cast<int>(v.size()) == cols_, "vector length mismatch in apply");
  IntVec out(rows_, 0);
  for (int i = 0; i < rows_; ++i) {
    i128 acc = 0;
    for (int j = 0; j < cols_; ++j) acc += static_cast<i128>(at(i, j)) * v[j];
    out[i] = narrow(acc);
  }
  return out;
}

IntMat IntMat::transposed() const {
  IntMat t(cols_, rows_);
  for (int i = 0; i < rows_; ++i)
    for (int j = 0; j < cols_; ++j) t.at(j, i) = at(i, j);
  return t;
}

namespace {

/// Fraction-free (Bareiss-style) forward elimination on a rational copy.
/// Returns the pivot columns; `m` is modified in place.
std::vector<int> eliminate(std::vector<std::vector<Rat>>& m) {
  std::vector<int> pivotCols;
  if (m.empty()) return pivotCols;
  int rows = static_cast<int>(m.size());
  int cols = static_cast<int>(m[0].size());
  int r = 0;
  for (int c = 0; c < cols && r < rows; ++c) {
    int pivot = -1;
    for (int i = r; i < rows; ++i)
      if (!m[i][c].isZero()) {
        pivot = i;
        break;
      }
    if (pivot < 0) continue;
    std::swap(m[r], m[pivot]);
    for (int i = r + 1; i < rows; ++i) {
      if (m[i][c].isZero()) continue;
      Rat f = m[i][c] / m[r][c];
      for (int j = c; j < cols; ++j) m[i][j] -= f * m[r][j];
    }
    pivotCols.push_back(c);
    ++r;
  }
  return pivotCols;
}

std::vector<std::vector<Rat>> toRational(const IntMat& a) {
  std::vector<std::vector<Rat>> m(a.rows(), std::vector<Rat>(a.cols()));
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j) m[i][j] = Rat(a.at(i, j));
  return m;
}

}  // namespace

int IntMat::rank() const {
  auto m = toRational(*this);
  return static_cast<int>(eliminate(m).size());
}

std::string IntMat::str() const {
  std::ostringstream os;
  for (int i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (int j = 0; j < cols_; ++j) os << at(i, j) << (j + 1 < cols_ ? " " : "");
    os << (i + 1 < rows_ ? "\n" : "]");
  }
  return os.str();
}

void normalizeByGcd(IntVec& v) {
  i64 g = 0;
  for (i64 x : v) g = gcd64(g, x);
  if (g > 1)
    for (i64& x : v) x /= g;
}

i64 dot(const IntVec& a, const IntVec& b) {
  EMM_CHECK(a.size() == b.size(), "length mismatch in dot product");
  i128 acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<i128>(a[i]) * b[i];
  return narrow(acc);
}

bool solveRational(const IntMat& a, const IntVec& b, std::vector<Rat>& x) {
  EMM_CHECK(static_cast<int>(b.size()) == a.rows(), "rhs length mismatch in solve");
  // Augmented elimination.
  auto m = toRational(a);
  for (int i = 0; i < a.rows(); ++i) m[i].push_back(Rat(b[i]));
  auto pivots = eliminate(m);
  int cols = a.cols();
  // Inconsistent if a pivot landed in the augmented column.
  for (int c : pivots)
    if (c == cols) return false;
  // Back-substitute; free variables get zero.
  x.assign(cols, Rat(0));
  for (int k = static_cast<int>(pivots.size()) - 1; k >= 0; --k) {
    int c = pivots[k];
    Rat rhs = m[k][cols];
    for (int j = c + 1; j < cols; ++j) rhs -= m[k][j] * x[j];
    x[c] = rhs / m[k][c];
  }
  return true;
}

std::vector<IntVec> nullspace(const IntMat& a) {
  auto m = toRational(a);
  auto pivots = eliminate(m);
  int cols = a.cols();
  std::vector<bool> isPivot(cols, false);
  for (int c : pivots) isPivot[c] = true;

  std::vector<IntVec> basis;
  for (int free = 0; free < cols; ++free) {
    if (isPivot[free]) continue;
    // Solve with the free variable set to 1, other free variables 0.
    std::vector<Rat> x(cols, Rat(0));
    x[free] = Rat(1);
    for (int k = static_cast<int>(pivots.size()) - 1; k >= 0; --k) {
      int c = pivots[k];
      Rat rhs(0);
      for (int j = c + 1; j < cols; ++j) rhs -= m[k][j] * x[j];
      x[c] = rhs / m[k][c];
    }
    // Scale to integers.
    i64 scale = 1;
    for (const Rat& r : x) scale = lcm64(scale, r.den());
    IntVec v(cols);
    for (int j = 0; j < cols; ++j) v[j] = mulChecked(x[j].num(), scale / x[j].den());
    normalizeByGcd(v);
    basis.push_back(std::move(v));
  }
  return basis;
}

IntMat hermiteNormalForm(const IntMat& a) {
  // Column-style HNF via integer column operations (Euclidean reduction).
  IntMat h = a;
  int rows = h.rows(), cols = h.cols();
  int pivotCol = 0;
  for (int r = 0; r < rows && pivotCol < cols; ++r) {
    // Reduce columns pivotCol..cols-1 so at most one has a nonzero in row r.
    while (true) {
      int nz = -1, count = 0;
      for (int c = pivotCol; c < cols; ++c)
        if (h.at(r, c) != 0) {
          ++count;
          if (nz < 0 || std::abs(h.at(r, c)) < std::abs(h.at(r, nz))) nz = c;
        }
      if (count <= 1) {
        if (count == 1) {
          // Move the surviving column into pivot position.
          for (int i = 0; i < rows; ++i) std::swap(h.at(i, pivotCol), h.at(i, nz));
        }
        break;
      }
      // Reduce all other columns by the minimal one.
      for (int c = pivotCol; c < cols; ++c) {
        if (c == nz || h.at(r, c) == 0) continue;
        i64 q = floorDiv(h.at(r, c), h.at(r, nz));
        for (int i = 0; i < rows; ++i)
          h.at(i, c) = subChecked(h.at(i, c), mulChecked(q, h.at(i, nz)));
      }
    }
    if (h.at(r, pivotCol) == 0) continue;  // No pivot in this row.
    // Make the pivot positive.
    if (h.at(r, pivotCol) < 0)
      for (int i = 0; i < rows; ++i) h.at(i, pivotCol) = narrow(-static_cast<i128>(h.at(i, pivotCol)));
    // Reduce earlier columns modulo the pivot (entries left of pivot in row r
    // must lie in [0, pivot)).
    for (int c = 0; c < pivotCol; ++c) {
      i64 q = floorDiv(h.at(r, c), h.at(r, pivotCol));
      if (q == 0) continue;
      for (int i = 0; i < rows; ++i)
        h.at(i, c) = subChecked(h.at(i, c), mulChecked(q, h.at(i, pivotCol)));
    }
    ++pivotCol;
  }
  return h;
}

}  // namespace emm
