// Exact integer matrices and vectors.
//
// The polyhedral front end represents iteration-space constraints, affine
// access functions and transformation hyperplanes as integer matrices. All
// operations are exact (checked int64 with __int128 intermediates); rank is
// computed by fraction-free Gaussian elimination, so Algorithm 1's reuse test
// (rank(F) < dim(iteration space)) is never subject to floating-point error.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "support/checked_int.h"
#include "support/rational.h"

namespace emm {

using IntVec = std::vector<i64>;

/// Dense integer matrix with exact arithmetic.
class IntMat {
public:
  IntMat() = default;
  IntMat(int rows, int cols) : rows_(rows), cols_(cols), data_(size_t(rows) * cols, 0) {
    EMM_CHECK(rows >= 0 && cols >= 0, "negative matrix shape");
  }
  /// Row-major construction: {{1,0,3},{0,1,-2}}.
  IntMat(std::initializer_list<std::initializer_list<i64>> rows);

  static IntMat identity(int n);
  static IntMat zero(int rows, int cols) { return IntMat(rows, cols); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  i64& at(int r, int c) {
    EMM_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
    return data_[size_t(r) * cols_ + c];
  }
  i64 at(int r, int c) const {
    EMM_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "matrix index out of range");
    return data_[size_t(r) * cols_ + c];
  }

  IntVec row(int r) const;
  void setRow(int r, const IntVec& v);
  /// Appends a row, growing the matrix by one.
  void appendRow(const IntVec& v);
  /// Removes row r.
  void removeRow(int r);

  friend IntMat operator*(const IntMat& a, const IntMat& b);
  friend IntMat operator+(const IntMat& a, const IntMat& b);
  friend IntMat operator-(const IntMat& a, const IntMat& b);
  friend bool operator==(const IntMat& a, const IntMat& b) = default;

  /// Matrix-vector product (v has cols() entries).
  IntVec apply(const IntVec& v) const;

  IntMat transposed() const;

  /// Rank over the rationals, computed exactly.
  int rank() const;

  std::string str() const;

private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<i64> data_;
};

/// Divides a vector by the gcd of its entries (no-op for the zero vector).
void normalizeByGcd(IntVec& v);

/// Dot product with overflow checking.
i64 dot(const IntVec& a, const IntVec& b);

/// Solves A x = b over the rationals. Returns true and fills x if a solution
/// exists (any solution, if underdetermined); false if inconsistent.
bool solveRational(const IntMat& a, const IntVec& b, std::vector<Rat>& x);

/// Basis of the rational nullspace of A, returned as integer vectors
/// (each scaled to integer entries with gcd 1). Empty if A has full column
/// rank.
std::vector<IntVec> nullspace(const IntMat& a);

/// Hermite Normal Form (column-style, nonnegative pivots) of A.
/// Returns H such that H = A * U for some unimodular U.
IntMat hermiteNormalForm(const IntMat& a);

}  // namespace emm
